// Tracing: span-tree structure, Chrome trace-event export, and the
// determinism contract -- identical runs yield byte-identical JSON.

#include "common/tracing.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bench007/oo7.h"
#include "mediator/mediator.h"

namespace disco {
namespace tracing {
namespace {

TEST(TraceTest, SpanTreeStructure) {
  Trace trace(100.0);
  int root = trace.BeginSpan("query");
  trace.Advance(5.0);
  int child = trace.BeginSpan("submit @erp", "submit");
  trace.Advance(20.0);
  trace.EndSpan(child);
  trace.EndSpan(root);

  ASSERT_EQ(trace.spans().size(), 2u);
  const Span& q = trace.spans()[0];
  const Span& s = trace.spans()[1];
  EXPECT_EQ(q.parent, -1);
  EXPECT_EQ(q.depth, 0);
  EXPECT_DOUBLE_EQ(q.start_ms, 100.0);
  EXPECT_DOUBLE_EQ(q.end_ms, 125.0);
  EXPECT_EQ(s.parent, root);
  EXPECT_EQ(s.depth, 1);
  EXPECT_DOUBLE_EQ(s.start_ms, 105.0);
  EXPECT_DOUBLE_EQ(s.duration_ms(), 20.0);
  EXPECT_EQ(s.category, "submit");
  EXPECT_EQ(trace.open_spans(), 0);
}

TEST(TraceTest, InstantEventsAndArgs) {
  Trace trace;
  int root = trace.BeginSpan("query");
  trace.Advance(1.0);
  int marker = trace.Instant("breaker oo7 closed->open");
  trace.AddArg(marker, "source", std::string("oo7"));
  trace.AddArg(root, "attempts", int64_t{3});
  trace.AddArg(root, "elapsed", 2.5);
  trace.EndSpan(root);

  const Span& m = trace.spans()[1];
  EXPECT_TRUE(m.instant);
  EXPECT_EQ(m.parent, root);
  EXPECT_DOUBLE_EQ(m.start_ms, 1.0);
  ASSERT_EQ(trace.spans()[0].args.size(), 2u);
  EXPECT_EQ(trace.spans()[0].args[0].first, "attempts");
  EXPECT_EQ(trace.spans()[0].args[0].second, "3");
  EXPECT_EQ(trace.spans()[0].args[1].second, "2.500");
}

TEST(TraceTest, ScopedSpanToleratesNullTrace) {
  ScopedSpan span(nullptr, "noop");
  span.Arg("ignored", int64_t{1});  // must not crash
}

TEST(TraceTest, ChromeJsonShape) {
  Trace trace;
  {
    ScopedSpan q(&trace, "query");
    trace.Advance(3.0);
    q.Arg("sql", "SELECT \"quoted\"");
  }
  const std::string json = trace.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":3000.000"), std::string::npos) << json;
  // Quotes inside args are escaped.
  EXPECT_NE(json.find("SELECT \\\"quoted\\\""), std::string::npos) << json;
}

TEST(TraceTest, IdenticalRunsAreByteIdentical) {
  auto run = []() {
    Trace trace(42.0);
    ScopedSpan q(&trace, "query");
    q.Arg("sql", "SELECT 1");
    trace.Advance(17.25);
    { ScopedSpan s(&trace, "submit @oo7", "submit"); trace.Advance(3.5); }
    trace.Instant("breaker erp open->half-open");
    return trace.ToChromeJson();
  };
  EXPECT_EQ(run(), run());
}

// End-to-end determinism: two freshly built mediators over identical
// data, same query, must export byte-identical trace JSON (the trace
// clock is the simulated clock; wall time never leaks in).
std::string TraceJsonOfOneQuery() {
  bench007::OO7Config config;
  config.num_atomic_parts = 500;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 25;
  config.num_documents = 25;
  auto source = bench007::BuildOO7Source(config);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  wrapper::SimulatedWrapper::Options opts;
  opts.cost_rules = bench007::Oo7YaoRuleText();
  mediator::Mediator med;
  EXPECT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(*source), opts))
                  .ok());
  auto r = med.Query("SELECT id, x FROM AtomicPart WHERE id <= 99");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (!r.ok() || r->trace == nullptr) return std::string();
  EXPECT_EQ(r->trace->open_spans(), 0);
  return r->trace->ToChromeJson();
}

TEST(TraceDeterminismTest, MediatorTracesAreByteIdentical) {
  const std::string first = TraceJsonOfOneQuery();
  const std::string second = TraceJsonOfOneQuery();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The trace records the full lifecycle.
  for (const char* phase :
       {"\"parse\"", "\"bind\"", "\"optimize\"", "\"execute\"",
        "\"history-feedback\"", "submit @oo7"}) {
    EXPECT_NE(first.find(phase), std::string::npos) << phase;
  }
}

TEST(TraceDeterminismTest, TracingCanBeDisabled) {
  mediator::MediatorOptions options;
  options.collect_traces = false;
  mediator::Mediator med(options);
  bench007::OO7Config config;
  config.num_atomic_parts = 200;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 10;
  config.num_documents = 10;
  auto source = bench007::BuildOO7Source(config);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(*source),
                                      wrapper::SimulatedWrapper::Options()))
                  .ok());
  auto r = med.Query("SELECT id FROM AtomicPart WHERE id <= 9");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->trace, nullptr);
}

}  // namespace
}  // namespace tracing
}  // namespace disco
