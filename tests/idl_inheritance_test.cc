// Interface inheritance -- the feature the paper marks as planned
// ("Support of inheritance and aggregation of interfaces is planed",
// §3.1), implemented here.

#include <gtest/gtest.h>

#include "idl/idl_parser.h"

namespace disco {
namespace idl {
namespace {

const InterfaceDef* Find(const std::vector<InterfaceDef>& defs,
                         const std::string& name) {
  for (const InterfaceDef& d : defs) {
    if (d.schema.name() == name) return &d;
  }
  return nullptr;
}

TEST(IdlInheritanceTest, DerivedGetsBaseAttributesFirst) {
  auto defs = ParseModule(
      "interface Employee {\n"
      "  attribute Long salary;\n"
      "  attribute String name;\n"
      "}\n"
      "interface Manager : Employee {\n"
      "  attribute Long teamSize;\n"
      "}");
  ASSERT_TRUE(defs.ok()) << defs.status().ToString();
  const InterfaceDef* manager = Find(*defs, "Manager");
  ASSERT_NE(manager, nullptr);
  ASSERT_EQ(manager->schema.num_attributes(), 3);
  EXPECT_EQ(manager->schema.attributes()[0].name, "salary");
  EXPECT_EQ(manager->schema.attributes()[1].name, "name");
  EXPECT_EQ(manager->schema.attributes()[2].name, "teamSize");
  // The base is untouched.
  EXPECT_EQ(Find(*defs, "Employee")->schema.num_attributes(), 2);
}

TEST(IdlInheritanceTest, DeclarationOrderDoesNotMatter) {
  auto defs = ParseModule(
      "interface Manager : Employee { attribute Long teamSize; }\n"
      "interface Employee { attribute Long salary; }");
  ASSERT_TRUE(defs.ok()) << defs.status().ToString();
  EXPECT_EQ(Find(*defs, "Manager")->schema.num_attributes(), 2);
}

TEST(IdlInheritanceTest, TransitiveChains) {
  auto defs = ParseModule(
      "interface A { attribute Long a; }\n"
      "interface B : A { attribute Long b; }\n"
      "interface C : B { attribute Long c; }");
  ASSERT_TRUE(defs.ok()) << defs.status().ToString();
  const InterfaceDef* c = Find(*defs, "C");
  ASSERT_EQ(c->schema.num_attributes(), 3);
  EXPECT_EQ(c->schema.attributes()[0].name, "a");
  EXPECT_EQ(c->schema.attributes()[2].name, "c");
}

TEST(IdlInheritanceTest, MultipleBases) {
  auto defs = ParseModule(
      "interface Named { attribute String name; }\n"
      "interface Dated { attribute Long date; }\n"
      "interface Doc : Named, Dated { attribute String body; }");
  ASSERT_TRUE(defs.ok()) << defs.status().ToString();
  const InterfaceDef* doc = Find(*defs, "Doc");
  ASSERT_EQ(doc->schema.num_attributes(), 3);
  EXPECT_EQ(doc->schema.attributes()[0].name, "name");
  EXPECT_EQ(doc->schema.attributes()[1].name, "date");
}

TEST(IdlInheritanceTest, OperationsAndCardinalityInherit) {
  auto defs = ParseModule(
      "interface Base {\n"
      "  attribute Long k;\n"
      "  short age();\n"
      "  cardinality extent(out long CountObject, out long TotalSize,\n"
      "                     out long ObjectSize);\n"
      "}\n"
      "interface Derived : Base { attribute Long extra; }");
  ASSERT_TRUE(defs.ok()) << defs.status().ToString();
  const InterfaceDef* derived = Find(*defs, "Derived");
  EXPECT_EQ(derived->schema.operations().size(), 1u);
  EXPECT_TRUE(derived->declares_extent_stats);
  EXPECT_FALSE(derived->declares_attribute_stats);
}

TEST(IdlInheritanceTest, UnknownBaseRejected) {
  auto defs = ParseModule("interface X : Ghost { attribute Long a; }");
  ASSERT_FALSE(defs.ok());
  EXPECT_NE(defs.status().message().find("Ghost"), std::string::npos);
}

TEST(IdlInheritanceTest, CycleRejected) {
  auto defs = ParseModule(
      "interface A : B { attribute Long a; }\n"
      "interface B : A { attribute Long b; }");
  ASSERT_FALSE(defs.ok());
  EXPECT_NE(defs.status().message().find("cycle"), std::string::npos);
}

TEST(IdlInheritanceTest, AttributeRedefinitionRejected) {
  auto defs = ParseModule(
      "interface A { attribute Long x; }\n"
      "interface B : A { attribute String x; }");
  ASSERT_FALSE(defs.ok());
  EXPECT_NE(defs.status().message().find("redefines"), std::string::npos);
}

}  // namespace
}  // namespace idl
}  // namespace disco
