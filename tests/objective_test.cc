// Optimization objectives: TotalTime (throughput) vs TimeFirst (first
// answer). The paper's cost vectors carry TimeFirst/TimeNext exactly so
// this choice can be made; here the two objectives pick different
// placements for a blocking sort.

#include <gtest/gtest.h>

#include "algebra/plan_printer.h"
#include "mediator/mediator.h"
#include "optimizer/optimizer.h"

namespace disco {
namespace optimizer {
namespace {

std::unique_ptr<mediator::Mediator> BuildMediator() {
  auto med = std::make_unique<mediator::Mediator>();
  auto src = sources::MakeRelationalSource("s1");
  storage::Table* r = src->CreateTable(CollectionSchema(
      "R", {{"k", AttrType::kLong}, {"v", AttrType::kLong}}));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(
        r->Insert({Value(int64_t{(i * 7919) % 10000}), Value(int64_t{i})})
            .ok());
  }
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(src),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

/// Depth (root = 0) of the first node of `kind`, or -1.
int DepthOf(const algebra::Operator& op, algebra::OpKind kind,
            int depth = 0) {
  if (op.kind == kind) return depth;
  for (const auto& c : op.children) {
    int d = DepthOf(*c, kind, depth + 1);
    if (d >= 0) return d;
  }
  return -1;
}

TEST(ObjectiveTest, TimeFirstPushesBlockingSortIntoTheSource) {
  auto med = BuildMediator();
  auto bound = med->Analyze("SELECT k FROM R ORDER BY k");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  costmodel::CostEstimator est(med->registry(), &med->catalog());
  Optimizer opt(&est, &med->capabilities());

  OptimizerOptions total, first;
  total.objective = Objective::kTotalTime;
  first.objective = Objective::kTimeFirst;
  auto p_total = opt.Optimize(*bound, total);
  auto p_first = opt.Optimize(*bound, first);
  ASSERT_TRUE(p_total.ok()) << p_total.status().ToString();
  ASSERT_TRUE(p_first.ok()) << p_first.status().ToString();

  // TotalTime: sorting at the mediator is cheaper (faster comparisons),
  // so the sort sits above the submit. TimeFirst: the pushed sort
  // overlaps with shipping -- the first tuple arrives one network
  // latency after the source finishes sorting, instead of after the
  // whole result has been shipped.
  int sort_vs_submit_total = DepthOf(*p_total->plan, algebra::OpKind::kSort) -
                             DepthOf(*p_total->plan, algebra::OpKind::kSubmit);
  int sort_vs_submit_first = DepthOf(*p_first->plan, algebra::OpKind::kSort) -
                             DepthOf(*p_first->plan, algebra::OpKind::kSubmit);
  EXPECT_LT(sort_vs_submit_total, 0)
      << algebra::PrintPlan(*p_total->plan);
  EXPECT_GT(sort_vs_submit_first, 0)
      << algebra::PrintPlan(*p_first->plan);

  // Each plan wins on its own objective.
  EXPECT_LE(p_total->final_estimate.root.total_time(),
            p_first->final_estimate.root.total_time());
  EXPECT_LT(p_first->final_estimate.root.time_first(),
            p_total->final_estimate.root.time_first());
}

TEST(ObjectiveTest, DefaultObjectiveIsTotalTime) {
  OptimizerOptions options;
  EXPECT_EQ(options.objective, Objective::kTotalTime);
}

}  // namespace
}  // namespace optimizer
}  // namespace disco
