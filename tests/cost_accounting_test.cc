// Properties of the simulated cost accounting: measured times must
// behave the way real systems do, because the whole evaluation rests on
// them (monotonicity in data size and selectivity, cold-vs-warm buffers,
// clustering locality, metering boundaries).

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "bench007/oo7.h"
#include "sources/data_source.h"

namespace disco {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;

std::unique_ptr<sources::DataSource> MakeSource(int rows) {
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}, {"v", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i}), Value(int64_t{i * 3})}).ok());
  }
  EXPECT_TRUE(t->CreateIndex("k").ok());
  src->env()->pool.Clear();
  return src;
}

class ScanCostMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanCostMonotoneTest, BiggerTablesScanSlower) {
  const int rows = GetParam();
  auto small = MakeSource(rows);
  auto big = MakeSource(rows * 4);
  auto rs = small->Execute(*Scan("T"));
  auto rb = big->Execute(*Scan("T"));
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GT(rb->total_ms, rs->total_ms);
  EXPECT_GT(rb->pages_read, rs->pages_read);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanCostMonotoneTest,
                         ::testing::Values(100, 1000, 5000));

TEST(CostAccountingTest, SelectivityMonotoneUnderIndexScan) {
  auto src = MakeSource(20000);
  double prev = -1;
  for (int64_t cutoff : {100, 1000, 5000, 15000}) {
    src->env()->pool.Clear();
    auto r = src->Execute(
        *Select(Scan("T"), "k", CmpOp::kLe, Value(cutoff)));
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r->total_ms, prev);
    prev = r->total_ms;
  }
}

TEST(CostAccountingTest, WarmBufferIsCheaper) {
  auto src = MakeSource(20000);
  auto plan = Select(Scan("T"), "k", CmpOp::kLe, Value(int64_t{5000}));
  src->env()->pool.Clear();
  auto cold = src->Execute(*plan);
  ASSERT_TRUE(cold.ok());
  auto warm = src->Execute(*plan);  // pages now resident
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->total_ms, cold->total_ms);
  EXPECT_LT(warm->pages_read, cold->pages_read);
  EXPECT_EQ(warm->tuples.size(), cold->tuples.size());
}

TEST(CostAccountingTest, ClusteredRangeScanTouchesFewerPages) {
  bench007::OO7Config clustered, unclustered;
  clustered.num_atomic_parts = unclustered.num_atomic_parts = 14000;
  clustered.clustered_ids = true;
  auto cs = bench007::BuildOO7Source(clustered);
  auto us = bench007::BuildOO7Source(unclustered);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(us.ok());
  auto plan = Select(Scan("AtomicPart"), "id", CmpOp::kLe,
                     Value(int64_t{699}));  // 5%
  (*cs)->env()->pool.Clear();
  (*us)->env()->pool.Clear();
  auto rc = (*cs)->Execute(*plan);
  auto ru = (*us)->Execute(*plan);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(ru.ok());
  ASSERT_EQ(rc->tuples.size(), ru->tuples.size());
  // 5% of a clustered collection lives on ~5% of the pages; unclustered
  // it is spread over nearly all of them (Yao).
  EXPECT_LT(rc->pages_read * 3, ru->pages_read);
  EXPECT_LT(rc->total_ms, ru->total_ms);
}

TEST(CostAccountingTest, FirstTupleNeverAfterTotal) {
  auto src = MakeSource(5000);
  for (const auto& plan :
       {Scan("T"), Select(Scan("T"), "k", CmpOp::kGt, Value(int64_t{100})),
        algebra::Sort(Scan("T"), "v")}) {
    src->env()->pool.Clear();
    auto r = src->Execute(*plan);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->first_tuple_ms, 0);
    EXPECT_LE(r->first_tuple_ms, r->total_ms);
  }
}

TEST(CostAccountingTest, BlockingSortDelaysFirstTuple) {
  auto src = MakeSource(20000);
  src->env()->pool.Clear();
  auto streaming = src->Execute(*Scan("T"));
  ASSERT_TRUE(streaming.ok());
  src->env()->pool.Clear();
  auto blocking = src->Execute(*algebra::Sort(Scan("T"), "v"));
  ASSERT_TRUE(blocking.ok());
  // A scan's first tuple arrives almost immediately; a sort's only after
  // consuming (most of) the input.
  EXPECT_LT(streaming->first_tuple_ms, streaming->total_ms * 0.1);
  EXPECT_GT(blocking->first_tuple_ms, blocking->total_ms * 0.5);
}

TEST(CostAccountingTest, MaintenanceIsUnmetered) {
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}}));
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE(t->CreateIndex("k").ok());
  ASSERT_TRUE(t->ComputeStats(16).ok());
  EXPECT_DOUBLE_EQ(src->env()->clock.now_ms(), 0.0);
  // ...while queries are metered.
  auto r = src->Execute(*Scan("T"));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(src->env()->clock.now_ms(), 0.0);
}

TEST(CostAccountingTest, ExecutionIsDeterministic) {
  auto a = MakeSource(10000);
  auto b = MakeSource(10000);
  auto plan = Select(Scan("T"), "k", CmpOp::kLe, Value(int64_t{2500}));
  a->env()->pool.Clear();
  b->env()->pool.Clear();
  auto ra = a->Execute(*plan);
  auto rb = b->Execute(*plan);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_DOUBLE_EQ(ra->total_ms, rb->total_ms);
  EXPECT_EQ(ra->pages_read, rb->pages_read);
}

}  // namespace
}  // namespace disco
