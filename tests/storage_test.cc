// Storage substrate: slotted pages, buffer pool LRU/charging, heap files,
// and the simulated clock semantics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/sim_clock.h"

namespace disco {
namespace storage {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(PageTest, InsertAndGet) {
  Page page(256);
  auto r1 = page.Insert(Bytes("hello"));
  ASSERT_TRUE(r1.ok());
  auto r2 = page.Insert(Bytes("world!"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(page.num_records(), 2);

  auto g = page.Get(*r1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(std::string(g->begin(), g->end()), "hello");
  g = page.Get(*r2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(std::string(g->begin(), g->end()), "world!");
}

TEST(PageTest, EmptyRecordAllowed) {
  Page page(64);
  auto r = page.Insert({});
  ASSERT_TRUE(r.ok());
  auto g = page.Get(*r);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->empty());
}

TEST(PageTest, BadSlotRejected) {
  Page page(64);
  EXPECT_TRUE(page.Get(0).status().IsOutOfRange());
  ASSERT_TRUE(page.Insert(Bytes("x")).ok());
  EXPECT_TRUE(page.Get(1).status().IsOutOfRange());
}

TEST(PageTest, FullPageRejectsInsert) {
  Page page(64);  // 60 usable bytes; each 10-byte record consumes 14.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(page.Insert(Bytes("0123456789")).ok()) << i;
  }
  EXPECT_TRUE(page.Insert(Bytes("0123456789")).status().IsOutOfRange());
  EXPECT_EQ(page.num_records(), 4);
  // A smaller record can still squeeze into the remaining 4 bytes.
  EXPECT_TRUE(page.Insert(Bytes("")).ok());
}

TEST(PageTest, FreeSpaceDecreasesMonotonically) {
  Page page(512);
  uint32_t prev = page.free_space();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(page.Insert(Bytes("record")).ok());
    EXPECT_LT(page.free_space(), prev);
    prev = page.free_space();
  }
}

TEST(BufferPoolTest, MissChargesHitDoesNot) {
  SimClock clock;
  BufferPool pool(&clock, 4, 25.0);
  pool.Touch(1);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 25.0);
  pool.Touch(1);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 25.0);  // hit: no charge
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
}

TEST(BufferPoolTest, LruEviction) {
  SimClock clock;
  BufferPool pool(&clock, 2, 1.0);
  pool.Touch(1);
  pool.Touch(2);
  pool.Touch(1);   // 1 is now most recent
  pool.Touch(3);   // evicts 2
  pool.Touch(1);   // hit
  EXPECT_EQ(pool.misses(), 3);
  pool.Touch(2);   // miss again (was evicted)
  EXPECT_EQ(pool.misses(), 4);
  EXPECT_LE(pool.resident(), 2u);
}

TEST(BufferPoolTest, ClearDropsResidency) {
  SimClock clock;
  BufferPool pool(&clock, 8, 1.0);
  pool.Touch(1);
  pool.Touch(2);
  pool.Clear();
  EXPECT_EQ(pool.resident(), 0u);
  pool.Touch(1);
  EXPECT_EQ(pool.misses(), 3);
}

TEST(SimClockTest, PauseStopsCharging) {
  SimClock clock;
  clock.Advance(5);
  {
    MeteringPause pause(&clock);
    clock.Advance(100);
    EXPECT_DOUBLE_EQ(clock.now_ms(), 5);
    {
      MeteringPause nested(&clock);
      clock.Advance(7);
    }
    EXPECT_TRUE(clock.paused());  // nested pause restores to paused
  }
  clock.Advance(5);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 10);
}

TEST(HeapFileTest, InsertGetRoundTrip) {
  SimClock clock;
  BufferPool pool(&clock, 64, 1.0);
  HeapFile heap(&pool, 0, HeapFileOptions{});
  std::vector<RID> rids;
  for (int i = 0; i < 100; ++i) {
    auto rid = heap.Insert(Bytes("record-" + std::to_string(i)));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ(heap.num_records(), 100);
  for (int i = 0; i < 100; ++i) {
    auto rec = heap.Get(rids[static_cast<size_t>(i)]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(std::string(rec->begin(), rec->end()),
              "record-" + std::to_string(i));
  }
}

TEST(HeapFileTest, FillFactorLimitsPageUse) {
  SimClock clock;
  BufferPool pool(&clock, 64, 1.0);
  HeapFileOptions full, half;
  full.page_size = 4096;
  half.page_size = 4096;
  half.fill_factor = 0.5;
  HeapFile a(&pool, 0, full), b(&pool, 1, half);
  std::vector<uint8_t> rec(100);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.Insert(rec).ok());
    ASSERT_TRUE(b.Insert(rec).ok());
  }
  EXPECT_GT(b.num_pages(), a.num_pages());
}

TEST(HeapFileTest, MaxRecordsPerPageHonored) {
  SimClock clock;
  BufferPool pool(&clock, 64, 1.0);
  HeapFileOptions options;
  options.max_records_per_page = 7;
  HeapFile heap(&pool, 0, options);
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(heap.Insert(Bytes("x")).ok());
  }
  EXPECT_EQ(heap.num_pages(), 10);
}

TEST(HeapFileTest, ForEachVisitsEverythingInOrder) {
  SimClock clock;
  BufferPool pool(&clock, 64, 1.0);
  HeapFile heap(&pool, 0, HeapFileOptions{});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap.Insert(Bytes(std::to_string(i))).ok());
  }
  int count = 0;
  ASSERT_TRUE(heap.ForEach([&](const RID&, std::span<const uint8_t> rec) {
                    EXPECT_EQ(std::string(rec.begin(), rec.end()),
                              std::to_string(count));
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 50);

  // Early termination.
  count = 0;
  ASSERT_TRUE(heap.ForEach([&](const RID&, std::span<const uint8_t>) {
                    return ++count < 10;
                  })
                  .ok());
  EXPECT_EQ(count, 10);
}

TEST(HeapFileTest, ScanChargesPerPage) {
  SimClock clock;
  BufferPool pool(&clock, 1024, 25.0);
  HeapFileOptions options;
  options.page_size = 4096;
  HeapFile heap(&pool, 0, options);
  std::vector<uint8_t> rec(400);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(heap.Insert(rec).ok());
  pool.Clear();
  clock.Reset();
  ASSERT_TRUE(
      heap.ForEach([](const RID&, std::span<const uint8_t>) { return true; })
          .ok());
  EXPECT_DOUBLE_EQ(clock.now_ms(),
                   25.0 * static_cast<double>(heap.num_pages()));
}

TEST(HeapFileTest, OutOfRangeGetRejected) {
  SimClock clock;
  BufferPool pool(&clock, 8, 1.0);
  HeapFile heap(&pool, 0, HeapFileOptions{});
  EXPECT_TRUE(heap.Get(RID{5, 0}).status().IsOutOfRange());
}

}  // namespace
}  // namespace storage
}  // namespace disco
