// The registration phase: IDL round trip, statistics flow, rule
// compilation against the wrapper's own schema, capabilities.

#include "wrapper/registration.h"

#include <gtest/gtest.h>

#include "costmodel/generic_model.h"
#include "idl/idl_parser.h"
#include "sources/data_source.h"

namespace disco {
namespace wrapper {
namespace {

std::unique_ptr<sources::DataSource> MakeSource() {
  auto src = sources::MakeRelationalSource("hr");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "Employee", {{"id", AttrType::kLong},
                   {"salary", AttrType::kLong},
                   {"name", AttrType::kString}}));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i}), Value(int64_t{1000 + i}),
                           Value("n" + std::to_string(i))})
                    .ok());
  }
  EXPECT_TRUE(t->CreateIndex("id").ok());
  storage::Table* d = src->CreateTable(CollectionSchema(
      "Dept", {{"dno", AttrType::kLong}}));
  EXPECT_TRUE(d->Insert({Value(int64_t{1})}).ok());
  return src;
}

struct Registered {
  Catalog catalog;
  costmodel::RuleRegistry registry;
  optimizer::CapabilityTable caps;
  RegistrationReport report;
  std::unique_ptr<SimulatedWrapper> wrapper;
};

std::unique_ptr<Registered> Register(SimulatedWrapper::Options options) {
  auto out = std::make_unique<Registered>();
  out->wrapper =
      std::make_unique<SimulatedWrapper>(MakeSource(), std::move(options));
  auto report = RegisterWrapper(out->wrapper.get(), &out->catalog,
                                &out->registry, &out->caps);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  out->report = *report;
  return out;
}

TEST(RegistrationTest, SchemasAndStatisticsFlowToCatalog) {
  auto reg = Register({});
  EXPECT_EQ(reg->report.collections, 2);
  EXPECT_TRUE(reg->report.statistics_exported);
  EXPECT_TRUE(reg->catalog.HasCollection("Employee"));
  EXPECT_TRUE(reg->catalog.HasCollection("Dept"));

  auto entry = reg->catalog.Collection("Employee");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->source, "hr");
  EXPECT_EQ(entry->stats.extent.count_object, 100);
  auto id_stats = entry->stats.Attribute("id");
  ASSERT_TRUE(id_stats.ok());
  EXPECT_TRUE(id_stats->indexed);
  EXPECT_EQ(id_stats->min, Value(int64_t{0}));
  EXPECT_EQ(id_stats->max, Value(int64_t{99}));
  auto name_stats = entry->stats.Attribute("name");
  ASSERT_TRUE(name_stats.ok());
  EXPECT_FALSE(name_stats->indexed);
}

TEST(RegistrationTest, GeneratedIdlParsesBack) {
  SimulatedWrapper wrapper(MakeSource(), {});
  std::string idl = wrapper.ExportInterfaces();
  EXPECT_NE(idl.find("interface Employee"), std::string::npos);
  EXPECT_NE(idl.find("cardinality extent"), std::string::npos);
  auto parsed = idl::ParseModule(idl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(RegistrationTest, CostRulesCompileAgainstOwnSchema) {
  SimulatedWrapper::Options options;
  options.cost_rules =
      "select(Employee, salary = V) { TotalTime = 1; }\n"
      "scan(C) { TotalTime = 2; }";
  auto reg = Register(options);
  EXPECT_EQ(reg->report.cost_rules, 2);
  // The salary rule landed at predicate scope (literal attribute).
  const auto& candidates =
      reg->registry.Candidates("hr", algebra::OpKind::kSelect);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].scope, costmodel::Scope::kPredicate);
}

TEST(RegistrationTest, BadRulesFailRegistration) {
  SimulatedWrapper::Options options;
  options.cost_rules = "select(Employee, { TotalTime = 1; }";
  SimulatedWrapper wrapper(MakeSource(), options);
  Catalog catalog;
  costmodel::RuleRegistry registry;
  optimizer::CapabilityTable caps;
  EXPECT_TRUE(RegisterWrapper(&wrapper, &catalog, &registry, &caps)
                  .status()
                  .IsParseError());
}

TEST(RegistrationTest, NoStatisticsExportLeavesEmptyStats) {
  SimulatedWrapper::Options options;
  options.export_statistics = false;
  auto reg = Register(options);
  EXPECT_FALSE(reg->report.statistics_exported);
  auto entry = reg->catalog.Collection("Employee");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->stats.extent.count_object, 0);
  EXPECT_TRUE(entry->stats.attributes.empty());
}

TEST(RegistrationTest, HistogramsExportedWhenConfigured) {
  SimulatedWrapper::Options options;
  options.histogram_buckets = 8;
  auto reg = Register(options);
  auto entry = reg->catalog.Collection("Employee");
  ASSERT_TRUE(entry.ok());
  auto id_stats = entry->stats.Attribute("id");
  ASSERT_TRUE(id_stats.ok());
  EXPECT_TRUE(id_stats->histogram.has_value());
}

TEST(RegistrationTest, CapabilitiesRecorded) {
  SimulatedWrapper::Options options;
  options.capabilities = optimizer::SourceCapabilities::FilterOnly();
  auto reg = Register(options);
  EXPECT_FALSE(reg->caps.Get("hr").join);
  EXPECT_TRUE(reg->caps.Get("hr").select);
  // Unknown sources default to everything.
  EXPECT_TRUE(reg->caps.Get("other").join);
}

TEST(RegistrationTest, DoubleRegistrationRejected) {
  auto reg = Register({});
  auto again = RegisterWrapper(reg->wrapper.get(), &reg->catalog,
                               &reg->registry, &reg->caps);
  EXPECT_TRUE(again.status().IsAlreadyExists());
}

TEST(RegistrationTest, RefreshStatisticsUpdatesCatalog) {
  auto reg = Register({});
  // New data arrives at the source after registration.
  storage::Table* t = reg->wrapper->source()->table("Employee");
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i}), Value(int64_t{1000 + i}),
                           Value("n")})
                    .ok());
  }
  EXPECT_EQ(reg->catalog.Collection("Employee")->stats.extent.count_object,
            100);
  ASSERT_TRUE(RefreshStatistics(reg->wrapper.get(), &reg->catalog).ok());
  EXPECT_EQ(reg->catalog.Collection("Employee")->stats.extent.count_object,
            150);
}

TEST(CapabilityTest, SupportsMapping) {
  optimizer::SourceCapabilities all;
  EXPECT_TRUE(all.Supports(algebra::OpKind::kScan));
  EXPECT_TRUE(all.Supports(algebra::OpKind::kJoin));
  EXPECT_FALSE(all.Supports(algebra::OpKind::kSubmit));

  optimizer::SourceCapabilities filter =
      optimizer::SourceCapabilities::FilterOnly();
  EXPECT_TRUE(filter.Supports(algebra::OpKind::kScan));
  EXPECT_TRUE(filter.Supports(algebra::OpKind::kSelect));
  EXPECT_TRUE(filter.Supports(algebra::OpKind::kProject));
  EXPECT_FALSE(filter.Supports(algebra::OpKind::kJoin));
  EXPECT_FALSE(filter.Supports(algebra::OpKind::kAggregate));
  EXPECT_FALSE(filter.Supports(algebra::OpKind::kSort));
}

}  // namespace
}  // namespace wrapper
}  // namespace disco
