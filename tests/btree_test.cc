#include "storage/btree.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/sim_clock.h"

namespace disco {
namespace storage {
namespace {

struct Env {
  SimClock clock;
  BufferPool pool{&clock, 4096, 1.0};
};

TEST(BTreeTest, EmptySearches) {
  Env env;
  BTree tree(&env.pool, 0);
  auto eq = tree.SearchEq(Value(int64_t{5}));
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->empty());
  auto all = tree.SearchRange(std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->empty());
}

TEST(BTreeTest, InsertAndPointLookup) {
  Env env;
  BTree tree(&env.pool, 0, /*fanout=*/8);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(Value(i * 2), RID{static_cast<PageId>(i), 0})
                    .ok());
  }
  EXPECT_EQ(tree.num_entries(), 1000);
  EXPECT_GT(tree.height(), 1);

  auto hit = tree.SearchEq(Value(int64_t{500}));
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].page, 250u);

  auto miss = tree.SearchEq(Value(int64_t{501}));  // odd: absent
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->empty());
}

TEST(BTreeTest, DuplicateKeys) {
  Env env;
  BTree tree(&env.pool, 0, /*fanout=*/4);
  for (uint16_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(Value(int64_t{7}), RID{0, i}).ok());
  }
  ASSERT_TRUE(tree.Insert(Value(int64_t{8}), RID{1, 0}).ok());
  auto dups = tree.SearchEq(Value(int64_t{7}));
  ASSERT_TRUE(dups.ok());
  EXPECT_EQ(dups->size(), 50u);
}

TEST(BTreeTest, RangeBoundsInclusiveExclusive) {
  Env env;
  BTree tree(&env.pool, 0, /*fanout=*/6);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value(i), RID{static_cast<PageId>(i), 0}).ok());
  }
  auto closed = tree.SearchRange(BTree::Bound{Value(int64_t{10}), true},
                                 BTree::Bound{Value(int64_t{20}), true});
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->size(), 11u);

  auto open = tree.SearchRange(BTree::Bound{Value(int64_t{10}), false},
                               BTree::Bound{Value(int64_t{20}), false});
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->size(), 9u);

  auto below = tree.SearchRange(std::nullopt,
                                BTree::Bound{Value(int64_t{5}), true});
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(below->size(), 6u);

  auto above = tree.SearchRange(BTree::Bound{Value(int64_t{95}), true},
                                std::nullopt);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(above->size(), 5u);
}

TEST(BTreeTest, StringKeys) {
  Env env;
  BTree tree(&env.pool, 0, /*fanout=*/4);
  ASSERT_TRUE(tree.Insert(Value("Adiba"), RID{1, 0}).ok());
  ASSERT_TRUE(tree.Insert(Value("Valduriez"), RID{2, 0}).ok());
  ASSERT_TRUE(tree.Insert(Value("Naacke"), RID{3, 0}).ok());
  auto r = tree.SearchRange(BTree::Bound{Value("B"), true},
                            BTree::Bound{Value("Z"), true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(BTreeTest, MixedKeyTypesRejected) {
  Env env;
  BTree tree(&env.pool, 0);
  ASSERT_TRUE(tree.Insert(Value(int64_t{1}), RID{0, 0}).ok());
  EXPECT_TRUE(tree.Insert(Value("x"), RID{0, 1}).IsInvalidArgument());
}

TEST(BTreeTest, SearchChargesBufferPool) {
  Env env;
  BTree tree(&env.pool, 0, /*fanout=*/8);
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(Value(i), RID{0, 0}).ok());
  }
  env.pool.Clear();
  env.pool.ResetStats();
  ASSERT_TRUE(tree.SearchEq(Value(int64_t{1500})).ok());
  // A point probe touches one node per level, plus at most one extra
  // leaf when duplicates could straddle a split boundary.
  EXPECT_GE(env.pool.misses(), tree.height());
  EXPECT_LE(env.pool.misses(), tree.height() + 1);
}

// Property: against a brute-force mirror, under several fanouts and
// insertion orders.
struct BTreeCase {
  int fanout;
  bool shuffled;
  int n;
};

class BTreePropertyTest : public ::testing::TestWithParam<BTreeCase> {};

TEST_P(BTreePropertyTest, MatchesBruteForce) {
  const BTreeCase& c = GetParam();
  Env env;
  BTree tree(&env.pool, 0, c.fanout);
  std::vector<int64_t> keys;
  Rng rng(42);
  for (int i = 0; i < c.n; ++i) {
    keys.push_back(rng.NextInt64(0, c.n / 2));  // duplicates likely
  }
  if (!c.shuffled) std::sort(keys.begin(), keys.end());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(tree.Insert(Value(keys[i]),
                            RID{static_cast<PageId>(i), 0})
                    .ok());
  }

  // Point lookups.
  for (int64_t probe : {int64_t{0}, int64_t{c.n / 4}, int64_t{c.n}}) {
    auto got = tree.SearchEq(Value(probe));
    ASSERT_TRUE(got.ok());
    size_t expected = static_cast<size_t>(
        std::count(keys.begin(), keys.end(), probe));
    EXPECT_EQ(got->size(), expected) << "probe " << probe;
  }

  // Range scan returns keys in order and the right count.
  int64_t lo = c.n / 8, hi = c.n / 3;
  auto got = tree.SearchRange(BTree::Bound{Value(lo), true},
                              BTree::Bound{Value(hi), true});
  ASSERT_TRUE(got.ok());
  size_t expected = 0;
  for (int64_t k : keys) {
    if (k >= lo && k <= hi) ++expected;
  }
  EXPECT_EQ(got->size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreePropertyTest,
    ::testing::Values(BTreeCase{4, true, 500}, BTreeCase{4, false, 500},
                      BTreeCase{16, true, 2000}, BTreeCase{16, false, 2000},
                      BTreeCase{128, true, 5000},
                      BTreeCase{340, true, 10000}));

}  // namespace
}  // namespace storage
}  // namespace disco
