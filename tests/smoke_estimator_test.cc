// Early end-to-end smoke tests for the cost pipeline: generic model
// compiles and installs, plans estimate, wrapper rules override.

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "costlang/compiler.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/registry.h"

namespace disco {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;

class SmokeEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        costmodel::InstallGenericModel(&registry_, params_).ok());
    ASSERT_TRUE(catalog_.RegisterSource("src1").ok());
    CollectionSchema schema("Employee", {{"salary", AttrType::kLong},
                                         {"name", AttrType::kString}});
    CollectionStats stats;
    stats.extent = ExtentStats{10000, 1200000, 120};
    AttributeStats salary;
    salary.indexed = true;
    salary.count_distinct = 1000;
    salary.min = Value(int64_t{1000});
    salary.max = Value(int64_t{30000});
    stats.attributes["salary"] = salary;
    ASSERT_TRUE(
        catalog_.RegisterCollection("src1", schema, stats).ok());
  }

  costmodel::CalibrationParams params_;
  costmodel::RuleRegistry registry_;
  Catalog catalog_;
};

TEST_F(SmokeEstimatorTest, ScanEstimates) {
  costmodel::CostEstimator est(&registry_, &catalog_);
  auto plan = Submit("src1", Scan("Employee"));
  auto r = est.Estimate(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // scan: 120 + 25 * (1200000/4096) + 9 * 10000 = 120+7324.2+90000
  // submit adds latency 50 + 0.01 * 1200000 = 12050.
  EXPECT_NEAR(r->root.total_time(),
              120 + 25 * (1200000.0 / 4096) + 90000 + 12050, 1.0);
  EXPECT_DOUBLE_EQ(r->root.count_object(), 10000);
}

TEST_F(SmokeEstimatorTest, SelectUsesIndexWhenCheaper) {
  costmodel::CostEstimator est(&registry_, &catalog_);
  // salary = 5000: selectivity 1/1000 -> index scan should beat the
  // sequential plan (which costs at least the full scan).
  auto plan = Submit(
      "src1", Select(Scan("Employee"), "salary", CmpOp::kEq, Value(5000)));
  auto r = est.Estimate(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->root.count_object(), 10, 0.01);
  // Sequential would exceed the scan cost (~97k ms); the index path is
  // orders cheaper.
  EXPECT_LT(r->root.total_time(), 2000);
}

TEST_F(SmokeEstimatorTest, WrapperRuleOverridesGenericModel) {
  // A wrapper-scope rule declaring scans free.
  costlang::CompileSchema cs;
  cs.AddCollection("Employee", {"salary", "name"});
  auto rules = costlang::CompileRuleText(
      "scan(C) { TotalTime = 42; }", cs);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_TRUE(registry_.AddWrapperRules("src1", std::move(*rules)).ok());

  costmodel::CostEstimator est(&registry_, &catalog_);
  auto plan = Submit("src1", Scan("Employee"));
  auto r = est.Estimate(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // TotalTime from the wrapper rule (42) + submit communication (12050).
  EXPECT_NEAR(r->root.total_time(), 42 + 12050, 0.5);
  // Other variables still flow from the generic model.
  EXPECT_DOUBLE_EQ(r->root.count_object(), 10000);
}

TEST_F(SmokeEstimatorTest, PredicateScopeBeatsCollectionScope) {
  costlang::CompileSchema cs;
  cs.AddCollection("Employee", {"salary", "name"});
  auto rules = costlang::CompileRuleText(
      "select(Employee, P) { TotalTime = 1000; }\n"
      "select(Employee, salary = V) { TotalTime = 7; }\n",
      cs);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_TRUE(registry_.AddWrapperRules("src1", std::move(*rules)).ok());

  costmodel::CostEstimator est(&registry_, &catalog_);
  auto plan = Submit(
      "src1", Select(Scan("Employee"), "salary", CmpOp::kEq, Value(5000)));
  auto r = est.Estimate(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 7 (rule) + latency 50 + 0.01 * TotalSize (10 objects of 120 B).
  EXPECT_NEAR(r->root.total_time(), 7 + 50 + 0.01 * 10 * 120, 1.0);
}

}  // namespace
}  // namespace disco
