// Critical-path analysis and what-if latency modeling
// (docs/OBSERVABILITY.md): the exact-tiling identity against the
// query's measured time, byte-identical paths across federation pool
// sizes, what-if predictions validated against actual re-runs with
// rescaled fault profiles, and the registry / MonitorReport / trace /
// query-log / metrics surfaces.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

using algebra::Scan;
using algebra::Submit;
using mediator::CriticalPath;
using mediator::CriticalSegment;
using mediator::FederationOptions;
using mediator::Mediator;
using mediator::MediatorOptions;
using mediator::RetryPolicy;
using wrapper::FaultInjectingWrapper;
using wrapper::FaultProfile;

std::unique_ptr<FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<FaultInjectingWrapper>(std::move(inner), profile);
}

/// Four-way union over sources a..d; `a` is flaky (recovers on attempt
/// 3) so retry backoff shows up on the critical lane.
std::unique_ptr<algebra::Operator> FourWayUnion() {
  return algebra::Union(
      algebra::Union(Submit("a", Scan("A")), Submit("b", Scan("B"))),
      algebra::Union(Submit("c", Scan("C")), Submit("d", Scan("D"))));
}

std::unique_ptr<Mediator> MakeFourSourceMediator(
    const FederationOptions& fed) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.fault_tolerance.federation = fed;
  auto medp = std::make_unique<Mediator>(opts);
  Mediator& med = *medp;
  EXPECT_TRUE(
      med.RegisterWrapper(
             MakeSource("a", "A", 10,
                        FaultProfile::Flaky(0.3, 18).WithLatency(100)))
          .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("b", "B", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("c", "C", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("d", "D", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  return medp;
}

struct PathSnapshot {
  bool ok = false;
  double measured_ms = 0;
  std::shared_ptr<const CriticalPath> path;
  std::string text;
  std::string json;
};

PathSnapshot RunFourSource(const FederationOptions& fed) {
  std::unique_ptr<Mediator> med = MakeFourSourceMediator(fed);
  auto plan = FourWayUnion();
  auto r = med->Execute(*plan);
  PathSnapshot snap;
  snap.ok = r.ok();
  if (!r.ok()) return snap;
  snap.measured_ms = r->measured_ms;
  snap.path = r->critical_path;
  if (r->critical_path != nullptr) {
    snap.text = r->critical_path->ToText();
    snap.json = r->critical_path->ToJson();
  }
  return snap;
}

/// A one-source mediator for the SQL-level surfaces.
std::unique_ptr<Mediator> MakeSimpleMediator(MediatorOptions opts = {}) {
  auto medp = std::make_unique<Mediator>(opts);
  EXPECT_TRUE(
      medp->RegisterWrapper(MakeSource("src", "T", 40, FaultProfile{})).ok());
  return medp;
}

// --- The tiling identity: the segments sum to the query's measured
// time exactly, serial and scattered alike, and the scatter-side
// segments tile exactly the max-not-sum charge. ---
TEST(CriticalPathTest, SegmentsSumToMeasured) {
  for (int threads : {0, 4}) {
    FederationOptions fed;
    fed.threads = threads;
    if (threads > 0) fed.deadline_ms = 1e9;
    PathSnapshot snap = RunFourSource(fed);
    ASSERT_TRUE(snap.ok) << "threads=" << threads;
    ASSERT_NE(snap.path, nullptr) << "threads=" << threads;
    const CriticalPath& p = *snap.path;
    EXPECT_EQ(p.measured_ms, snap.measured_ms);
    EXPECT_NEAR(p.total_ms(), p.measured_ms, 1e-6) << "threads=" << threads;
    const double scatter_side = p.kind_ms("scatter-wait") +
                                p.kind_ms("hedge-wait") + p.kind_ms("stall");
    EXPECT_NEAR(scatter_side, p.scatter_ms, 1e-6) << "threads=" << threads;
    if (threads == 0) {
      EXPECT_EQ(p.scatter_ms, 0.0);
    } else {
      // The slowest lane (a's retries) bounds the concurrent phase.
      EXPECT_GT(p.scatter_ms, 0.0);
      EXPECT_GT(p.kind_ms("scatter-wait"), 0.0);
    }
    for (const CriticalSegment& s : p.segments) {
      EXPECT_GT(s.ms, 0.0) << s.label;  // no zero-width filler
    }
  }
}

// --- The acceptance bar: same seed => byte-identical critical path
// (text and JSON renderings) at federation pool sizes 0 / 1 / 4. ---
TEST(CriticalPathTest, ByteIdenticalAcrossPoolSizes) {
  PathSnapshot base;
  for (int threads : {0, 1, 4}) {
    FederationOptions fed;
    fed.threads = threads;
    fed.deadline_ms = 1e9;  // never expires; keeps the scatter path on
    PathSnapshot snap = RunFourSource(fed);
    ASSERT_TRUE(snap.ok) << "threads=" << threads;
    ASSERT_NE(snap.path, nullptr) << "threads=" << threads;
    ASSERT_FALSE(snap.text.empty());
    if (threads == 0) {
      base = std::move(snap);
      continue;
    }
    EXPECT_EQ(snap.measured_ms, base.measured_ms) << "threads=" << threads;
    EXPECT_EQ(snap.text, base.text) << "threads=" << threads;
    EXPECT_EQ(snap.json, base.json) << "threads=" << threads;
  }
}

// The what-if model's identity re-solve reproduces the actual schedule:
// every ranked scenario's baseline equals the measured time.
TEST(CriticalPathTest, WhatIfBaselineReproducesMeasured) {
  FederationOptions fed;
  fed.threads = 4;
  fed.deadline_ms = 1e9;
  PathSnapshot snap = RunFourSource(fed);
  ASSERT_TRUE(snap.ok);
  ASSERT_NE(snap.path, nullptr);
  ASSERT_FALSE(snap.path->what_ifs.empty());
  for (const auto& w : snap.path->what_ifs) {
    EXPECT_NEAR(w.baseline_ms, snap.path->measured_ms, 1e-6)
        << w.scenario.ToString();
    EXPECT_LE(w.predicted_ms, w.baseline_ms + 1e-6) << w.scenario.ToString();
  }
}

/// Two-source scatter rig: `fast` answers quickly, `slow` is the
/// bottleneck with a seeded Slow(mean_ms) tail.
double RunFastSlowUnion(double slow_mean_ms,
                        std::shared_ptr<const CriticalPath>* path_out) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.federation.threads = 2;
  opts.fault_tolerance.federation.deadline_ms = 1e9;
  Mediator med(opts);
  EXPECT_TRUE(
      med.RegisterWrapper(MakeSource("fast", "F", 10, FaultProfile{})).ok());
  EXPECT_TRUE(med.RegisterWrapper(MakeSource("slow", "S", 10,
                                             FaultProfile::Slow(slow_mean_ms)))
                  .ok());
  auto plan = algebra::Union(Submit("fast", Scan("F")),
                             Submit("slow", Scan("S")));
  auto r = med.Execute(*plan);
  EXPECT_TRUE(r.ok());
  if (!r.ok()) return -1;
  if (path_out != nullptr) *path_out = r->critical_path;
  return r->measured_ms;
}

// --- The what-if acceptance bar: "source slow 2x faster" predicted
// from the 4000 ms run lands within 10% of an actual re-run whose
// injected slow profile is rescaled to 2000 ms (the seeded draw scales
// linearly with the mean, so the re-run IS the hypothetical). ---
TEST(CriticalPathTest, SourceSpeedupPredictionMatchesActualRerun) {
  std::shared_ptr<const CriticalPath> path;
  const double baseline_ms = RunFastSlowUnion(4000, &path);
  ASSERT_GT(baseline_ms, 0);
  ASSERT_NE(path, nullptr);

  const mediator::WhatIfResult* speedup = nullptr;
  for (const auto& w : path->what_ifs) {
    if (w.scenario.ToString() == "source 'slow' 2x faster") speedup = &w;
  }
  ASSERT_NE(speedup, nullptr) << path->ToText();
  EXPECT_NEAR(speedup->baseline_ms, baseline_ms, 1e-6);

  const double actual_ms = RunFastSlowUnion(2000, nullptr);
  ASSERT_GT(actual_ms, 0);
  EXPECT_LT(actual_ms, baseline_ms);
  // Within 10% of the true rescaled run (the unscaled remainder is the
  // per-message latency, a small fraction of the 4 s tail).
  EXPECT_NEAR(speedup->predicted_ms, actual_ms, 0.10 * actual_ms)
      << "predicted " << speedup->predicted_ms << " vs actual " << actual_ms;
}

/// East/west replicas; east is the primary, west the hedge target.
struct HedgeRig {
  std::unique_ptr<Mediator> med;
  FaultInjectingWrapper* east = nullptr;
  std::unique_ptr<algebra::Operator> plan;
};

HedgeRig MakeHedgeRig() {
  MediatorOptions opts;
  opts.fault_tolerance.federation.hedge = true;
  HedgeRig rig;
  rig.med = std::make_unique<Mediator>(std::move(opts));
  auto east = MakeSource("east", "E", 10, FaultProfile{});
  rig.east = east.get();
  EXPECT_TRUE(rig.med->RegisterWrapper(std::move(east)).ok());
  EXPECT_TRUE(
      rig.med->RegisterWrapper(MakeSource("west", "W", 10, FaultProfile{}))
          .ok());
  EXPECT_TRUE(rig.med->DeclareEquivalent("E", "W").ok());
  rig.plan = Submit("east", Scan("E"));
  return rig;
}

// A hedge-won submit decomposes into hedge-wait (the threshold wait on
// the slow primary) + scatter-wait on the replica, and the ranked
// scenarios include "hedging disabled" predicting a slowdown reverted
// to the primary's full latency.
TEST(CriticalPathTest, HedgeWonPathBlamesThresholdAndReplica) {
  HedgeRig rig = MakeHedgeRig();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.med->Execute(*rig.plan).ok());
  }
  rig.east->SetProfile(FaultProfile::Slow(4000));
  auto r = rig.med->Execute(*rig.plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->critical_path, nullptr);
  const CriticalPath& p = *r->critical_path;
  EXPECT_NEAR(p.total_ms(), p.measured_ms, 1e-6) << p.ToText();
  EXPECT_GT(p.kind_ms("hedge-wait"), 0.0) << p.ToText();
  bool blames_west = false;
  for (const CriticalSegment& s : p.segments) {
    if (s.kind == "scatter-wait" && s.source == "west") blames_west = true;
  }
  EXPECT_TRUE(blames_west) << p.ToText();

  const mediator::WhatIfResult* no_hedge = nullptr;
  for (const auto& w : p.what_ifs) {
    if (w.scenario.ToString() == "hedging disabled") no_hedge = &w;
  }
  ASSERT_NE(no_hedge, nullptr) << p.ToText();
  // Without the hedge the slow primary (>= 2 s draw) is simply awaited.
  EXPECT_GT(no_hedge->predicted_ms, p.measured_ms) << p.ToText();
  EXPECT_GT(no_hedge->predicted_ms, 2000) << no_hedge->predicted_ms;
}

TEST(CriticalPathTest, SerialQueryPathIsCpuPlusWait) {
  auto med = MakeSimpleMediator();
  auto r = med->Query("SELECT k FROM T WHERE k <= 9");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->critical_path, nullptr);
  const CriticalPath& p = *r->critical_path;
  EXPECT_NEAR(p.total_ms(), p.measured_ms, 1e-6);
  EXPECT_EQ(p.scatter_ms, 0.0);
  EXPECT_EQ(p.kind_ms("scatter-wait") + p.kind_ms("hedge-wait") +
                p.kind_ms("stall"),
            0.0);
  ASSERT_NE(p.dominant(), nullptr);
  // Communication to the only source dominates a 40-row scan.
  EXPECT_EQ(p.dominant()->kind, "wait");
  EXPECT_EQ(p.dominant()->subject(), "src");
}

TEST(CriticalPathTest, AnalysisCanBeDisabled) {
  MediatorOptions opts;
  opts.critical_path_analysis = false;
  auto med = MakeSimpleMediator(opts);
  auto r = med->Query("SELECT k FROM T");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->critical_path, nullptr);
  EXPECT_EQ(med->critical_paths().total_queries(), 0);
}

TEST(CriticalPathTest, RegistryAggregatesBlameAndSuggestions) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  const mediator::CriticalPathRegistry& reg = med->critical_paths();
  EXPECT_EQ(reg.total_queries(), 2);
  EXPECT_EQ(reg.plan_count(), 1u);
  EXPECT_GT(reg.total_ms(), 0.0);

  auto bottlenecks = reg.TopBottlenecks(10);
  ASSERT_FALSE(bottlenecks.empty());
  double share = 0;
  for (const auto& b : bottlenecks) {
    EXPECT_GT(b.ms, 0.0);
    EXPECT_GE(b.queries, 1);
    share += b.share;
  }
  EXPECT_NEAR(share, 1.0, 1e-6);  // unclipped list covers everything
  EXPECT_EQ(bottlenecks[0].subject, "src");  // the wait dominates

  auto suggestions = reg.TopSuggestions(10);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_GE(suggestions[0].predicted_delta_ms,
            suggestions.back().predicted_delta_ms);

  const std::string text = reg.ToText(5);
  EXPECT_NE(text.find("top bottlenecks"), std::string::npos) << text;
  EXPECT_NE(text.find("what-if suggestions"), std::string::npos) << text;
}

TEST(CriticalPathTest, MonitorReportShowsCritpathPanels) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  mediator::MonitorSnapshot snap = med->MonitorReport(5);
  EXPECT_EQ(snap.critpath_queries, 1);
  EXPECT_EQ(snap.critpath_plans, 1u);
  EXPECT_GT(snap.critpath_total_ms, 0.0);
  ASSERT_FALSE(snap.top_bottlenecks.empty());
  ASSERT_FALSE(snap.top_suggestions.empty());
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("critical paths:"), std::string::npos) << text;
  EXPECT_NE(text.find("top bottlenecks"), std::string::npos) << text;
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"critical_paths\":{\"queries\":1"), std::string::npos)
      << json;
  auto parsed = json::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(CriticalPathTest, ExplainAnalyzeAppendsCriticalPathBlock) {
  auto med = MakeSimpleMediator();
  auto report = med->ExplainAnalyze("SELECT k FROM T WHERE k <= 9");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("critical path:"), std::string::npos) << *report;
  EXPECT_NE(report->find("what-if (predicted response time):"),
            std::string::npos)
      << *report;
}

TEST(CriticalPathTest, QueryLogCarriesCritpathRollup) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  const std::string jsonl = med->query_log()->ToJsonl();
  EXPECT_NE(jsonl.find("\"critpath\":{\"ms\":"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"subject\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"share\":"), std::string::npos);
}

TEST(CriticalPathTest, TraceSpansGainCriticalArgs) {
  FederationOptions fed;
  fed.threads = 4;
  fed.deadline_ms = 1e9;
  auto med = MakeFourSourceMediator(fed);
  auto plan = FourWayUnion();
  auto r = med->Execute(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->trace, nullptr);
  const std::string chrome = r->trace->ToChromeJson();
  EXPECT_NE(chrome.find("\"critical\":\"scatter-wait\""), std::string::npos)
      << chrome;
  EXPECT_NE(chrome.find("\"critical_ms\":"), std::string::npos);
}

TEST(CriticalPathTest, MetricsFamilyPreRegisteredAndBumped) {
  auto med = MakeSimpleMediator();
  metrics::RegistrySnapshot before = med->metrics()->TakeSnapshot();
  ASSERT_TRUE(before.counters.count("disco.critpath.queries"));
  ASSERT_TRUE(before.histograms.count("disco.critpath.dominant_share"));
  EXPECT_EQ(before.counters["disco.critpath.queries"], 0);

  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  metrics::RegistrySnapshot after = med->metrics()->TakeSnapshot();
  EXPECT_EQ(after.counters["disco.critpath.queries"], 1);
  EXPECT_GT(after.counters["disco.critpath.segments"], 0);
  EXPECT_GT(after.histograms["disco.critpath.wait_ms"].count, 0);
}

TEST(CriticalPathTest, PathJsonParsesCleanly) {
  FederationOptions fed;
  fed.threads = 4;
  fed.deadline_ms = 1e9;
  PathSnapshot snap = RunFourSource(fed);
  ASSERT_TRUE(snap.ok);
  ASSERT_FALSE(snap.json.empty());
  auto parsed = json::ParseJson(snap.json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << snap.json;
  const json::JsonValue* segments = (*parsed)->Get("segments");
  ASSERT_NE(segments, nullptr);
  EXPECT_FALSE(segments->items.empty());
  const json::JsonValue* what_ifs = (*parsed)->Get("what_ifs");
  ASSERT_NE(what_ifs, nullptr);
  EXPECT_FALSE(what_ifs->items.empty());
}

}  // namespace
}  // namespace disco
