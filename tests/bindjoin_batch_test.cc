// Batched + parallel bind-join probes: batching correctness (batched
// waves produce byte-identical results to the serial per-key loop, for
// any federation pool size), typed probe-cache keying, fault semantics
// (retries, dead sources, deadline expiry mid-wave, guarded probe
// answers), and the response-time objective diverging from total-time
// in the join enumerator.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mediator/mediator.h"
#include "optimizer/optimizer.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

using algebra::CmpOp;
using algebra::JoinPredicate;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;
using mediator::ExecWarning;
using mediator::FederationOptions;
using mediator::Mediator;
using mediator::MediatorOptions;
using mediator::RetryPolicy;
using wrapper::FaultInjectingWrapper;
using wrapper::FaultProfile;

/// img.Image(id Long indexed, feature Long) with `rows` rows, behind a
/// fault-injecting wrapper (the bind-join probe target).
std::unique_ptr<FaultInjectingWrapper> MakeImageSource(int rows,
                                                       FaultProfile profile) {
  auto src = sources::MakeObjectDbSource("img");
  storage::Table* images = src->CreateTable(CollectionSchema(
      "Image", {{"id", AttrType::kLong}, {"feature", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(images
                    ->Insert({Value(int64_t{i}),
                              Value(int64_t{(i * 31) % 1000})})
                    .ok());
  }
  EXPECT_TRUE(images->CreateIndex("id").ok());
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<FaultInjectingWrapper>(std::move(inner), profile);
}

/// meta.Meta(photoId Long, year Long): photoId = i * 10, so year
/// predicates select disjoint 10%-slices with distinct keys.
std::unique_ptr<wrapper::Wrapper> MakeMetaSource(int rows) {
  auto src = sources::MakeRelationalSource("meta");
  storage::Table* docs = src->CreateTable(CollectionSchema(
      "Meta", {{"photoId", AttrType::kLong}, {"year", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(docs->Insert({Value(int64_t{i * 10}),
                              Value(int64_t{1990 + i % 10})})
                    .ok());
  }
  return std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
}

/// The workload: 40 metadata rows of year 1999 (40 distinct keys)
/// probing the indexed Image collection.
std::unique_ptr<algebra::Operator> ProbePlan() {
  return algebra::BindJoin(
      Submit("meta", Select(Scan("Meta"), "year", CmpOp::kEq,
                            Value(int64_t{1999}))),
      "img", "Image", JoinPredicate{"photoId", "id"});
}

std::unique_ptr<Mediator> MakeMediator(const FederationOptions& fed,
                                       FaultProfile img_profile = {}) {
  MediatorOptions opts;
  opts.record_history = false;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.fault_tolerance.federation = fed;
  auto med = std::make_unique<Mediator>(opts);
  // 100 ms per probe makes the wave overlap visible on the clock.
  EXPECT_TRUE(
      med->RegisterWrapper(MakeImageSource(400, img_profile.WithLatency(100)))
          .ok());
  EXPECT_TRUE(med->RegisterWrapper(MakeMetaSource(400)).ok());
  return med;
}

/// Everything observable about one run, rendered for byte comparison.
struct RunSnapshot {
  bool ok = false;
  std::string status;
  std::vector<storage::Tuple> tuples;
  std::vector<std::string> warnings;
  double measured_ms = 0;
  std::string trace_json;
  int64_t probes = 0, batches = 0, cache_hits = 0, waves = 0;
};

RunSnapshot RunProbes(const FederationOptions& fed,
                      FaultProfile img_profile = {}) {
  std::unique_ptr<Mediator> med = MakeMediator(fed, img_profile);
  auto plan = ProbePlan();
  auto r = med->Execute(*plan);
  RunSnapshot snap;
  snap.ok = r.ok();
  snap.probes = med->metrics()->counter("disco.exec.bindjoin.probes")->value();
  snap.batches =
      med->metrics()->counter("disco.exec.bindjoin.batches")->value();
  snap.cache_hits =
      med->metrics()->counter("disco.exec.bindjoin.cache_hits")->value();
  snap.waves = med->metrics()->counter("disco.exec.bindjoin.waves")->value();
  if (!r.ok()) {
    snap.status = r.status().ToString();
    return snap;
  }
  snap.tuples = r->tuples;
  for (const ExecWarning& w : r->warnings) {
    snap.warnings.push_back(w.ToString());
  }
  snap.measured_ms = r->measured_ms;
  if (r->trace != nullptr) snap.trace_json = r->trace->ToChromeJson();
  return snap;
}

TEST(BindJoinBatchTest, BatchedWavesMatchSerialTuplesAndBeatItsClock) {
  RunSnapshot serial = RunProbes(FederationOptions{});
  FederationOptions fed;
  fed.bind_batch_size = 8;
  fed.bind_parallelism = 4;
  RunSnapshot batched = RunProbes(fed);

  ASSERT_TRUE(serial.ok);
  ASSERT_TRUE(batched.ok);
  EXPECT_EQ(batched.tuples, serial.tuples);
  EXPECT_EQ(batched.warnings, serial.warnings);

  // 40 distinct keys: serially one probe per key; batched, 5 IN-probes
  // of 8 keys in ceil(5/4) = 2 waves.
  EXPECT_EQ(serial.probes, 40);
  EXPECT_EQ(serial.batches, 40);
  EXPECT_EQ(batched.probes, 5);
  EXPECT_EQ(batched.batches, 5);
  EXPECT_EQ(batched.waves, 2);

  // Waves charge max-not-sum: 2 waves of ~100 ms latency each against
  // 40 serial probes of ~100 ms. Integer-factor speedup.
  EXPECT_LT(batched.measured_ms * 2, serial.measured_ms);
}

TEST(BindJoinBatchTest, ByteIdenticalAcrossPoolSizes) {
  // Same bar as the scatter layer: with a fixed configuration, results,
  // warnings, the simulated clock, and every trace byte must match for
  // any federation pool size (the deadline knob keeps the scatter path
  // on at every size, like FederationTest.ByteIdenticalAcrossPoolSizes).
  RunSnapshot base;
  for (int threads : {0, 1, 4}) {
    FederationOptions fed;
    fed.threads = threads;
    fed.deadline_ms = 1e9;  // never expires; keeps the scatter path on
    fed.bind_batch_size = 8;
    fed.bind_parallelism = 4;
    RunSnapshot snap = RunProbes(fed);
    ASSERT_TRUE(snap.ok) << "threads=" << threads << ": " << snap.status;
    if (threads == 0) {
      base = std::move(snap);
      ASSERT_FALSE(base.trace_json.empty());
      continue;
    }
    EXPECT_EQ(snap.tuples, base.tuples) << "threads=" << threads;
    EXPECT_EQ(snap.warnings, base.warnings) << "threads=" << threads;
    EXPECT_EQ(snap.measured_ms, base.measured_ms) << "threads=" << threads;
    EXPECT_EQ(snap.trace_json, base.trace_json) << "threads=" << threads;
  }
}

TEST(BindJoinBatchTest, PerKeyDecompositionWhenWrapperLacksInSelect) {
  // A wrapper that cannot evaluate IN-set selects still probes in
  // waves, with each batch decomposed into per-key equality selects.
  auto run = [](bool in_select) {
    MediatorOptions opts;
    opts.record_history = false;
    FederationOptions fed;
    fed.bind_batch_size = 8;
    fed.bind_parallelism = 4;
    opts.fault_tolerance.federation = fed;
    auto med = std::make_unique<Mediator>(opts);
    auto src = sources::MakeObjectDbSource("img");
    storage::Table* images = src->CreateTable(CollectionSchema(
        "Image", {{"id", AttrType::kLong}, {"feature", AttrType::kLong}}));
    for (int i = 0; i < 400; ++i) {
      EXPECT_TRUE(
          images->Insert({Value(int64_t{i}), Value(int64_t{i % 7})}).ok());
    }
    EXPECT_TRUE(images->CreateIndex("id").ok());
    wrapper::SimulatedWrapper::Options wopts;
    wopts.capabilities.in_select = in_select;
    EXPECT_TRUE(med->RegisterWrapper(
                       std::make_unique<wrapper::SimulatedWrapper>(
                           std::move(src), wopts))
                    .ok());
    EXPECT_TRUE(med->RegisterWrapper(MakeMetaSource(400)).ok());
    auto plan = ProbePlan();
    auto r = med->Execute(*plan);
    EXPECT_TRUE(r.ok());
    return std::make_pair(
        r.ok() ? r->tuples : std::vector<storage::Tuple>{},
        med->metrics()->counter("disco.exec.bindjoin.probes")->value());
  };
  auto [in_tuples, in_probes] = run(true);
  auto [eq_tuples, eq_probes] = run(false);
  EXPECT_EQ(in_tuples, eq_tuples);
  EXPECT_EQ(in_probes, 5);   // one IN-set probe per batch
  EXPECT_EQ(eq_probes, 40);  // decomposed: one equality probe per key
}

TEST(BindJoinBatchTest, TypedProbeCacheKeysAndCrossTypeKeys) {
  // The probe cache keys on typed Value equality, not a string
  // rendering: Double outer keys dedup by numeric value and match the
  // Long-typed inner index (10.0 probes id = 10).
  MediatorOptions opts;
  opts.record_history = false;
  auto med = std::make_unique<Mediator>(opts);
  EXPECT_TRUE(med->RegisterWrapper(MakeImageSource(40, FaultProfile{})).ok());
  auto src = sources::MakeRelationalSource("meta");
  storage::Table* docs = src->CreateTable(CollectionSchema(
      "Meta", {{"photoId", AttrType::kDouble}, {"year", AttrType::kLong}}));
  for (double key : {10.0, 10.0, 20.5, 20.5, 30.0}) {
    ASSERT_TRUE(docs->Insert({Value(key), Value(int64_t{1999})}).ok());
  }
  ASSERT_TRUE(med->RegisterWrapper(
                     std::make_unique<wrapper::SimulatedWrapper>(
                         std::move(src),
                         wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto plan = ProbePlan();
  auto r = med->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 10.0 and 30.0 match Long ids 10 and 30; 20.5 matches nothing.
  EXPECT_EQ(r->tuples.size(), 3u);
  for (const storage::Tuple& t : r->tuples) {
    EXPECT_EQ(t[0], t[2]);  // photoId == id, across Double/Long tags
  }
  // 3 distinct keys among 5 outer rows: 3 probes, 2 cache hits.
  EXPECT_EQ(med->metrics()->counter("disco.exec.bindjoin.probes")->value(),
            3);
  EXPECT_EQ(
      med->metrics()->counter("disco.exec.bindjoin.cache_hits")->value(), 2);
}

TEST(BindJoinBatchTest, ProbeWavesRetryTransientFaults) {
  FederationOptions fed;
  fed.bind_batch_size = 8;
  fed.bind_parallelism = 4;
  RunSnapshot clean = RunProbes(fed);
  // Seeded flaky probe target: some probe attempts fail, retries
  // recover them, and the answer matches the clean run exactly.
  RunSnapshot flaky = RunProbes(fed, FaultProfile::Flaky(0.2, 18));
  ASSERT_TRUE(clean.ok);
  ASSERT_TRUE(flaky.ok) << flaky.status;
  EXPECT_EQ(flaky.tuples, clean.tuples);
  ASSERT_FALSE(flaky.warnings.empty());
  EXPECT_NE(flaky.warnings[0].find("recovered"), std::string::npos)
      << flaky.warnings[0];
  EXPECT_GT(flaky.measured_ms, clean.measured_ms);  // backoff was charged
}

TEST(BindJoinBatchTest, DeadProbeSourceAbortsTheJoin) {
  // A probe failure can never yield a partial join (a missing probe
  // answer would silently change the result), so the query fails even
  // in allow_partial mode.
  MediatorOptions opts;
  opts.record_history = false;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(2);
  FederationOptions fed;
  fed.bind_batch_size = 8;
  fed.bind_parallelism = 4;
  opts.fault_tolerance.federation = fed;
  auto med = std::make_unique<Mediator>(opts);
  ASSERT_TRUE(
      med->RegisterWrapper(MakeImageSource(40, FaultProfile::Dead())).ok());
  ASSERT_TRUE(med->RegisterWrapper(MakeMetaSource(400)).ok());
  auto plan = ProbePlan();
  auto r = med->Execute(*plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
}

TEST(BindJoinBatchTest, OpenBreakerCollapsesWavesToSingleProbes) {
  // Probe waves respect the breaker's single-probe rule: while the
  // probed source's breaker is not closed, a wave narrows to one probe
  // so a half-open trial cannot be a thundering herd. Once that trial
  // succeeds and re-closes the breaker, the remaining batches run at
  // full width again.
  MediatorOptions opts;
  opts.record_history = false;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.breaker.failure_threshold = 3;
  opts.breaker.cooldown_ms = 1.0;  // elapses within one helper query
  FederationOptions fed;
  fed.bind_batch_size = 8;    // 40 keys -> 5 batches
  fed.bind_parallelism = 5;   // all 5 in one wave when healthy
  opts.fault_tolerance.federation = fed;
  auto med = std::make_unique<Mediator>(opts);
  auto img = MakeImageSource(400, wrapper::FaultProfile::Dead());
  FaultInjectingWrapper* img_ptr = img.get();
  ASSERT_TRUE(med->RegisterWrapper(std::move(img)).ok());
  ASSERT_TRUE(med->RegisterWrapper(MakeMetaSource(400)).ok());

  // Dead probe source: the join fails and the breaker opens mid-join.
  auto plan = ProbePlan();
  ASSERT_FALSE(med->Execute(*plan).ok());
  ASSERT_EQ(med->health()->Health("img").state,
            mediator::BreakerState::kOpen);
  EXPECT_EQ(med->metrics()->counter("disco.exec.bindjoin.waves")->value(),
            1);

  // The simulated clock only moves while queries run; a meta-only query
  // lets the cooldown elapse, then the operator repairs the source.
  auto helper = Submit("meta", Scan("Meta"));
  ASSERT_TRUE(med->Execute(*helper).ok());
  img_ptr->SetProfile(wrapper::FaultProfile{});

  // Half-open: the first wave carries the single trial probe (batch 0),
  // its success re-closes the breaker, and the remaining 4 batches ride
  // one full-width wave -- 2 waves where a healthy run takes 1.
  auto r = med->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 4u);  // photoIds 90/190/290/390 match
  EXPECT_EQ(med->health()->Health("img").state,
            mediator::BreakerState::kClosed);
  EXPECT_EQ(med->metrics()->counter("disco.exec.bindjoin.waves")->value(),
            1 + 2);
  EXPECT_EQ(med->metrics()->counter("disco.exec.bindjoin.probes")->value(),
            5);
}

TEST(BindJoinBatchTest, DeadlineExpiryMidWaveAbortsWholeJoin) {
  // Calibrate on the simulated clock: a full run with an unreachable
  // deadline tells us the total; re-running with the deadline set 50 ms
  // inside it lands the expiry inside the last ~100 ms probe wave (the
  // outer submit and the first wave fit). The wave is clipped at the
  // deadline and the whole join aborts -- never a partial join.
  FederationOptions fed;
  fed.bind_batch_size = 8;
  fed.bind_parallelism = 4;
  fed.deadline_ms = 1e9;
  RunSnapshot full = RunProbes(fed);
  ASSERT_TRUE(full.ok) << full.status;
  fed.deadline_ms = full.measured_ms - 50;
  std::unique_ptr<Mediator> med = MakeMediator(fed);
  auto plan = ProbePlan();
  auto r = med->Execute(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("deadline"), std::string::npos)
      << r.status().ToString();
  EXPECT_GE(med->metrics()
                ->counter("disco.exec.bindjoin.deadline_aborts")
                ->value(),
            1);
}

/// Decorator that corrupts probe answers: flips the first tuple's first
/// value to a String in every Execute() whose subplan filters (i.e. the
/// probes, not the outer scan).
class CorruptingWrapper : public wrapper::Wrapper {
 public:
  explicit CorruptingWrapper(std::unique_ptr<wrapper::Wrapper> inner)
      : inner_(std::move(inner)) {}
  const std::string& name() const override { return inner_->name(); }
  std::string ExportInterfaces() const override {
    return inner_->ExportInterfaces();
  }
  Result<CollectionStats> ExportStatistics(
      const std::string& collection) const override {
    return inner_->ExportStatistics(collection);
  }
  std::string ExportCostRules() const override {
    return inner_->ExportCostRules();
  }
  optimizer::SourceCapabilities ExportCapabilities() const override {
    return inner_->ExportCapabilities();
  }
  Result<sources::ExecutionResult> Execute(
      const algebra::Operator& subplan) override {
    Result<sources::ExecutionResult> r = inner_->Execute(subplan);
    if (r.ok() && subplan.kind == algebra::OpKind::kSelect &&
        !r->tuples.empty()) {
      r->tuples[0][0] = Value("corrupt");
    }
    return r;
  }

 private:
  std::unique_ptr<wrapper::Wrapper> inner_;
};

TEST(BindJoinBatchTest, GuardQuarantinesMalformedBatchedProbeAnswers) {
  MediatorOptions opts;
  opts.record_history = false;
  FederationOptions fed;
  fed.bind_batch_size = 8;
  fed.bind_parallelism = 4;
  opts.fault_tolerance.federation = fed;
  auto med = std::make_unique<Mediator>(opts);
  ASSERT_TRUE(med->RegisterWrapper(std::make_unique<CorruptingWrapper>(
                                       MakeImageSource(400, FaultProfile{})))
                  .ok());
  ASSERT_TRUE(med->RegisterWrapper(MakeMetaSource(400)).ok());
  auto plan = ProbePlan();
  auto r = med->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every probe's first row came back type-corrupted: the guard
  // quarantines those rows (they vanish from the join) and warns.
  EXPECT_GE(
      med->metrics()->counter("disco.guard.quarantined_rows")->value(), 1);
  EXPECT_LT(r->tuples.size(), 40u);
  bool guarded_warning = false;
  for (const ExecWarning& w : r->warnings) {
    if (w.ToString().find("quarantin") != std::string::npos) {
      guarded_warning = true;
    }
  }
  EXPECT_TRUE(guarded_warning);
}

TEST(BindJoinBatchTest, ResponseTimeObjectiveCanPickADifferentPlan) {
  // A three-relation chain (Tag - Meta - Image) sized so the serial
  // -total and overlapped-response objectives disagree: shipping the
  // collections and joining at the mediator pays every submit once
  // (total time: their sum; response time: roughly their max), while
  // the batched bind join into Image replaces the biggest ship with
  // probe waves that land in between the two.
  MediatorOptions opts;
  opts.record_history = false;
  FederationOptions fed;
  fed.bind_batch_size = 4;
  fed.bind_parallelism = 2;
  opts.fault_tolerance.federation = fed;
  auto med = std::make_unique<Mediator>(opts);
  ASSERT_TRUE(med->RegisterWrapper(MakeImageSource(220, FaultProfile{})).ok());
  ASSERT_TRUE(med->RegisterWrapper(MakeMetaSource(400)).ok());
  auto tag = sources::MakeRelationalSource("tag");
  storage::Table* tags = tag->CreateTable(CollectionSchema(
      "Tag", {{"photoId", AttrType::kLong}, {"label", AttrType::kLong}}));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        tags->Insert({Value(int64_t{i * 10}), Value(int64_t{i % 5})}).ok());
  }
  ASSERT_TRUE(med->RegisterWrapper(
                     std::make_unique<wrapper::SimulatedWrapper>(
                         std::move(tag),
                         wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto bound = med->Analyze(
      "SELECT label, feature FROM Tag, Meta, Image "
      "WHERE Tag.photoId = Meta.photoId AND Meta.photoId = Image.id "
      "AND year = 1999");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  costmodel::CostEstimator est(med->registry(), &med->catalog());
  optimizer::Optimizer opt(&est, &med->capabilities());

  optimizer::OptimizerOptions total, response;
  total.objective = optimizer::Objective::kTotalTime;
  response.objective = optimizer::Objective::kResponseTime;
  auto p_total = opt.Optimize(*bound, total);
  auto p_response = opt.Optimize(*bound, response);
  ASSERT_TRUE(p_total.ok()) << p_total.status().ToString();
  ASSERT_TRUE(p_response.ok()) << p_response.status().ToString();

  EXPECT_NE(p_total->plan->ToString(), p_response->plan->ToString())
      << "total    (" << p_total->estimated_ms << " ms): "
      << p_total->plan->ToString() << "\n"
      << "response (" << p_response->estimated_ms << " ms): "
      << p_response->plan->ToString();
  // The bind join survives where serial cost is what counts ...
  EXPECT_NE(p_total->plan->ToString().find("bindjoin"), std::string::npos)
      << p_total->plan->ToString();
  // ... and branch-and-bound pruning stayed active under the
  // response-time objective (3 relations: the later splits of the top
  // subset price against the incumbents of earlier ones).
  EXPECT_GT(p_response->stats.plans_pruned, 0);
}

}  // namespace
}  // namespace disco
