#include "storage/table.h"

#include <gtest/gtest.h>

namespace disco {
namespace storage {
namespace {

CollectionSchema FullSchema() {
  return CollectionSchema("T", {{"i", AttrType::kLong},
                                {"d", AttrType::kDouble},
                                {"s", AttrType::kString},
                                {"b", AttrType::kBool}});
}

TEST(TableTest, SerdeRoundTripAllTypes) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  Tuple t{Value(int64_t{-42}), Value(3.25), Value("héllo, wörld"),
          Value(true)};
  ASSERT_TRUE(table.Insert(t).ok());
  Tuple empty_string{Value(int64_t{0}), Value(0.0), Value(""), Value(false)};
  ASSERT_TRUE(table.Insert(empty_string).ok());

  int row = 0;
  ASSERT_TRUE(table
                  .Scan([&](const RID&, const Tuple& got) {
                    if (row == 0) {
                      EXPECT_EQ(got[0], Value(int64_t{-42}));
                      EXPECT_EQ(got[1], Value(3.25));
                      EXPECT_EQ(got[2], Value("héllo, wörld"));
                      EXPECT_EQ(got[3], Value(true));
                    } else {
                      EXPECT_EQ(got[2], Value(""));
                      EXPECT_EQ(got[3], Value(false));
                    }
                    ++row;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(row, 2);
}

TEST(TableTest, NullsRoundTrip) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  Tuple t{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  ASSERT_TRUE(table.Insert(t).ok());
  ASSERT_TRUE(table
                  .Scan([&](const RID&, const Tuple& got) {
                    for (const Value& v : got) EXPECT_TRUE(v.is_null());
                    return true;
                  })
                  .ok());
}

TEST(TableTest, SchemaMismatchRejected) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  // Wrong arity.
  EXPECT_FALSE(table.Insert({Value(int64_t{1})}).ok());
  // Wrong type in a field.
  EXPECT_FALSE(table.Insert({Value("notlong"), Value(1.0), Value("x"),
                             Value(true)})
                   .ok());
}

TEST(TableTest, FetchByRid) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Insert({Value(int64_t{i}), Value(1.0 * i),
                              Value(std::to_string(i)), Value(i % 2 == 0)})
                    .ok());
  }
  std::vector<RID> rids;
  ASSERT_TRUE(table.Scan([&](const RID& rid, const Tuple&) {
                    rids.push_back(rid);
                    return true;
                  })
                  .ok());
  auto t = table.Fetch(rids[7]);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)[0], Value(int64_t{7}));
}

TEST(TableTest, IndexMaintainedOnInsert) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert({Value(int64_t{i % 10}), Value(0.0), Value("x"),
                              Value(false)})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("i").ok());
  // Inserts after index creation are reflected.
  ASSERT_TRUE(table.Insert({Value(int64_t{3}), Value(0.0), Value("x"),
                            Value(false)})
                  .ok());
  auto index = table.Index("i");
  ASSERT_TRUE(index.ok());
  auto rids = (*index)->SearchEq(Value(int64_t{3}));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 11u);  // 10 original + 1 late
}

TEST(TableTest, IndexErrors) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  EXPECT_TRUE(table.CreateIndex("missing").IsNotFound());
  ASSERT_TRUE(table.CreateIndex("i").ok());
  EXPECT_TRUE(table.CreateIndex("i").IsAlreadyExists());
  EXPECT_FALSE(table.HasIndex("d"));
  EXPECT_TRUE(table.Index("d").status().IsNotFound());
}

TEST(TableTest, ComputeStatsBasics) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Insert({Value(int64_t{i}), Value(i * 0.5),
                              Value("s" + std::to_string(i % 10)),
                              Value(i % 2 == 0)})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("i", /*clustered=*/true).ok());
  auto stats = table.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->extent.count_object, 100);
  EXPECT_EQ(stats->extent.total_size,
            table.heap().num_pages() * table.heap().page_size());
  EXPECT_GT(stats->extent.object_size, 0);

  auto i_stats = stats->Attribute("i");
  ASSERT_TRUE(i_stats.ok());
  EXPECT_TRUE(i_stats->indexed);
  EXPECT_TRUE(i_stats->clustered);
  EXPECT_EQ(i_stats->count_distinct, 100);
  EXPECT_EQ(i_stats->min, Value(int64_t{0}));
  EXPECT_EQ(i_stats->max, Value(int64_t{99}));

  auto s_stats = stats->Attribute("s");
  ASSERT_TRUE(s_stats.ok());
  EXPECT_FALSE(s_stats->indexed);
  EXPECT_EQ(s_stats->count_distinct, 10);
  EXPECT_EQ(s_stats->min, Value("s0"));
  EXPECT_EQ(s_stats->max, Value("s9"));
  EXPECT_FALSE(s_stats->histogram.has_value());
}

TEST(TableTest, ComputeStatsWithHistogram) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(table.Insert({Value(int64_t{i % 4}), Value(0.0), Value("x"),
                              Value(false)})
                    .ok());
  }
  auto stats = table.ComputeStats(/*histogram_buckets=*/8);
  ASSERT_TRUE(stats.ok());
  auto i_stats = stats->Attribute("i");
  ASSERT_TRUE(i_stats.ok());
  ASSERT_TRUE(i_stats->histogram.has_value());
  EXPECT_NEAR(i_stats->histogram->EstimateEq(Value(int64_t{2})), 0.25, 0.05);
}

TEST(TableTest, StatsIgnoreNullsForMinMax) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  ASSERT_TRUE(table.Insert({Value::Null(), Value(1.0), Value("b"),
                            Value(false)})
                  .ok());
  ASSERT_TRUE(table.Insert({Value(int64_t{5}), Value(1.0), Value("a"),
                            Value(false)})
                  .ok());
  auto stats = table.ComputeStats();
  ASSERT_TRUE(stats.ok());
  auto i_stats = stats->Attribute("i");
  ASSERT_TRUE(i_stats.ok());
  EXPECT_EQ(i_stats->min, Value(int64_t{5}));
  EXPECT_EQ(i_stats->count_distinct, 1);
}

TEST(TableTest, InsertsAndStatsAreUnmetered) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(table.Insert({Value(int64_t{i}), Value(0.0), Value("x"),
                              Value(false)})
                    .ok());
  }
  ASSERT_TRUE(table.CreateIndex("i").ok());
  ASSERT_TRUE(table.ComputeStats().ok());
  EXPECT_DOUBLE_EQ(env.clock.now_ms(), 0.0);
}

TEST(TableTest, SerializedSizeMatchesInsertAccounting) {
  StorageEnv env;
  Table table(FullSchema(), &env);
  Tuple t{Value(int64_t{1}), Value(2.0), Value("abc"), Value(true)};
  auto size = table.SerializedSize(t);
  ASSERT_TRUE(size.ok());
  // 4 tag bytes + 8 + 8 + (4 + 3) + 1.
  EXPECT_EQ(*size, 4 + 8 + 8 + 7 + 1);
  ASSERT_TRUE(table.Insert(t).ok());
  EXPECT_EQ(table.heap().data_bytes(), *size);
}

}  // namespace
}  // namespace storage
}  // namespace disco
