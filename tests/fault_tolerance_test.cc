// End-to-end fault tolerance: partial answers under union, the
// circuit breaker + replica routing through the optimizer, replan-once
// around a source that died mid-execution, and bit-identical
// reproducibility of a flaky federation under fixed seeds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

using algebra::Scan;
using algebra::Submit;
using mediator::BreakerState;
using mediator::ExecWarning;
using mediator::Mediator;
using mediator::MediatorOptions;
using mediator::RetryPolicy;
using wrapper::FaultInjectingWrapper;
using wrapper::FaultProfile;

/// Builds `source` with one single-column collection `collection`
/// holding `rows` Long tuples, behind a FaultInjectingWrapper.
std::unique_ptr<FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<FaultInjectingWrapper>(std::move(inner), profile);
}

TEST(FaultToleranceTest, PartialUnionDropsDeadBranchWithWarning) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(2);
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("good", "G", 10, FaultProfile{})).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("bad", "B", 10, FaultProfile::Dead()))
          .ok());

  auto plan = algebra::Union(Submit("good", Scan("G")),
                             Submit("bad", Scan("B")));
  auto r = med.Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);  // the surviving branch
  ASSERT_EQ(r->warnings.size(), 1u);
  EXPECT_EQ(r->warnings[0].source, "bad");
  EXPECT_EQ(r->warnings[0].attempts, 2);
  EXPECT_NE(r->warnings[0].message.find("union branch dropped"),
            std::string::npos)
      << r->warnings[0].ToString();
  // The failed attempts were not free: two round trips plus a backoff
  // are charged on top of whatever the good branch cost.
  EXPECT_GT(r->measured_ms, 2 * opts.exec.ms_msg_latency);
}

TEST(FaultToleranceTest, PartialModeNeverDropsJoinInputs) {
  // Dropping a join input would silently change the answer, so even in
  // allow_partial mode a dead join input aborts the query.
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(2);
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("good", "G", 10, FaultProfile{})).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("bad", "B", 10, FaultProfile::Dead()))
          .ok());

  auto plan = algebra::Join(Submit("good", Scan("G")),
                            Submit("bad", Scan("B")),
                            algebra::JoinPredicate{"k", "k"});
  auto r = med.Execute(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("source 'bad'"), std::string::npos);
}

/// One complete flaky-federation run, built from scratch: two sources
/// behind p=0.3 fault injectors, retries plus partial mode.
struct FederationRun {
  bool ok = false;
  size_t tuples = 0;
  double measured_ms = 0;
  int64_t injected = 0;
  std::vector<std::string> warnings;
};

FederationRun RunFlakyFederation(double p) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  Mediator med(opts);
  // Seed 18's first draws are 0.026, 0.231, 0.407: at p=0.3 the left
  // submit fails twice and recovers on the third attempt. Seed 1 opens
  // with 0.596: the right submit sails through.
  auto left = MakeSource("left", "L", 10, FaultProfile::Flaky(p, 18));
  auto right = MakeSource("right", "R", 10, FaultProfile::Flaky(p, 1));
  FaultInjectingWrapper* lp = left.get();
  FaultInjectingWrapper* rp = right.get();
  EXPECT_TRUE(med.RegisterWrapper(std::move(left)).ok());
  EXPECT_TRUE(med.RegisterWrapper(std::move(right)).ok());

  auto plan = algebra::Union(Submit("left", Scan("L")),
                             Submit("right", Scan("R")));
  auto r = med.Execute(*plan);
  FederationRun out;
  out.ok = r.ok();
  if (r.ok()) {
    out.tuples = r->tuples.size();
    out.measured_ms = r->measured_ms;
    for (const ExecWarning& w : r->warnings) {
      out.warnings.push_back(w.ToString());
    }
  }
  out.injected = lp->injected_failures() + rp->injected_failures();
  return out;
}

TEST(FaultToleranceTest, FlakyFederationIsDeterministic) {
  FederationRun a = RunFlakyFederation(0.3);
  ASSERT_TRUE(a.ok);
  EXPECT_GT(a.tuples, 0u);
  // The seeds are chosen so faults actually fire; every injected fault
  // leaves a trace (a recovery or a dropped-branch warning).
  EXPECT_GT(a.injected, 0);
  EXPECT_FALSE(a.warnings.empty());
  for (const std::string& w : a.warnings) {
    EXPECT_TRUE(w.find("'left'") != std::string::npos ||
                w.find("'right'") != std::string::npos)
        << w;
  }

  // Same seeds, fresh everything: bit-identical, including the clock.
  FederationRun b = RunFlakyFederation(0.3);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.tuples, b.tuples);
  EXPECT_EQ(a.measured_ms, b.measured_ms);  // exact, not approximate
  EXPECT_EQ(a.warnings, b.warnings);
  EXPECT_EQ(a.injected, b.injected);

  // Retry latency is charged: the flaky run costs more simulated time
  // than the same federation with faults disabled.
  FederationRun clean = RunFlakyFederation(0.0);
  ASSERT_TRUE(clean.ok);
  EXPECT_EQ(clean.injected, 0);
  EXPECT_TRUE(clean.warnings.empty());
  EXPECT_GT(a.measured_ms, clean.measured_ms);
}

TEST(FaultToleranceTest, BreakerOpensAndOptimizerRoutesToReplica) {
  MediatorOptions opts;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.breaker.failure_threshold = 3;  // one exhausted query trips it
  Mediator med(opts);
  auto dead = MakeSource("a", "RA", 10, FaultProfile::Dead());
  FaultInjectingWrapper* dead_ptr = dead.get();
  ASSERT_TRUE(med.RegisterWrapper(std::move(dead)).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("b", "RB", 10, FaultProfile{})).ok());
  ASSERT_TRUE(med.DeclareEquivalent("RA", "RB").ok());

  // First query: the plan submits to 'a', which dies mid-execution; the
  // mediator replans once around it and answers from the replica.
  auto r1 = med.Query("SELECT k FROM RA");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->tuples.size(), 10u);
  EXPECT_EQ(dead_ptr->calls(), 3);  // all three attempts burned
  ASSERT_GE(r1->warnings.size(), 2u);
  EXPECT_EQ(r1->warnings[0].source, "a");
  EXPECT_NE(r1->warnings[0].message.find("replanned around"),
            std::string::npos);
  EXPECT_NE(r1->warnings[1].message.find("rerouted 'RA' to replica 'RB'"),
            std::string::npos);

  // Three consecutive failures opened the breaker.
  EXPECT_EQ(med.health()->StateAt("a", med.sim_now_ms()),
            BreakerState::kOpen);

  // Second query: the optimizer avoids 'a' at planning time -- the dead
  // wrapper is never touched again, and no mid-flight replan is needed.
  auto r2 = med.Query("SELECT k FROM RA");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->tuples.size(), 10u);
  EXPECT_EQ(dead_ptr->calls(), 3);  // unchanged
  ASSERT_EQ(r2->warnings.size(), 1u);
  EXPECT_NE(r2->warnings[0].message.find("rerouted 'RA' to replica 'RB'"),
            std::string::npos);
  // The first query paid for the failed attempts; the second did not.
  EXPECT_GT(r1->measured_ms, r2->measured_ms);
}

TEST(FaultToleranceTest, NoReplicaMeansTheFailureSurfaces) {
  MediatorOptions opts;
  opts.fault_tolerance.retry = RetryPolicy::Standard(2);
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("a", "RA", 10, FaultProfile::Dead()))
          .ok());
  auto r = med.Query("SELECT k FROM RA");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("gave up after 2 attempts"),
            std::string::npos)
      << r.status().ToString();
}

TEST(FaultToleranceTest, HalfOpenProbeRecoversARepairedSource) {
  MediatorOptions opts;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.breaker.failure_threshold = 3;
  opts.breaker.cooldown_ms = 1.0;  // cooldown expires within one query
  Mediator med(opts);
  auto flaky = MakeSource("a", "RA", 10, FaultProfile::Dead());
  FaultInjectingWrapper* flaky_ptr = flaky.get();
  ASSERT_TRUE(med.RegisterWrapper(std::move(flaky)).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("helper", "Other", 10, FaultProfile{}))
          .ok());

  auto r1 = med.Query("SELECT k FROM RA");
  ASSERT_FALSE(r1.ok());
  ASSERT_EQ(med.health()->Health("a").state, BreakerState::kOpen);

  // The breaker cooldown runs on the simulated clock, which only moves
  // while queries execute: a query against another source lets the
  // (tiny) cooldown elapse.
  ASSERT_TRUE(med.Query("SELECT k FROM Other").ok());
  ASSERT_GT(med.sim_now_ms(),
            med.health()->Health("a").opened_at_ms + opts.breaker.cooldown_ms);

  // The operator fixes the source; the next submit goes through as a
  // half-open probe and re-closes the breaker.
  flaky_ptr->SetProfile(FaultProfile{});
  auto r2 = med.Query("SELECT k FROM RA");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->tuples.size(), 10u);
  EXPECT_EQ(med.health()->Health("a").state, BreakerState::kClosed);
  EXPECT_EQ(med.health()->Health("a").total_successes, 1);
}

}  // namespace
}  // namespace disco
