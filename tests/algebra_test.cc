#include "algebra/operator.h"

#include <gtest/gtest.h>

#include "algebra/plan_printer.h"

namespace disco {
namespace algebra {
namespace {

std::unique_ptr<Operator> SamplePlan() {
  return Join(Select(Scan("Employee"), "salary", CmpOp::kGt,
                     Value(int64_t{100})),
              Scan("Book"), JoinPredicate{"name", "author"});
}

TEST(AlgebraTest, ToStringMatchesPaperNotation) {
  auto plan = Select(Scan("employee"), "salary", CmpOp::kEq,
                     Value(int64_t{10}));
  EXPECT_EQ(plan->ToString(), "select(scan(employee), salary = 10)");
}

TEST(AlgebraTest, CloneIsDeepAndEqual) {
  auto plan = SamplePlan();
  auto copy = plan->Clone();
  EXPECT_TRUE(plan->Equals(*copy));
  EXPECT_EQ(plan->Hash(), copy->Hash());
  // Mutating the copy does not affect the original.
  copy->children[1]->collection = "Changed";
  EXPECT_FALSE(plan->Equals(*copy));
  EXPECT_EQ(plan->child(1).collection, "Book");
}

TEST(AlgebraTest, EqualsDiscriminates) {
  auto a = Select(Scan("T"), "x", CmpOp::kEq, Value(int64_t{1}));
  auto b = Select(Scan("T"), "x", CmpOp::kEq, Value(int64_t{2}));
  auto c = Select(Scan("T"), "x", CmpOp::kNe, Value(int64_t{1}));
  auto d = Select(Scan("U"), "x", CmpOp::kEq, Value(int64_t{1}));
  EXPECT_FALSE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*d));
  EXPECT_TRUE(a->Equals(*a->Clone()));
}

TEST(AlgebraTest, HashDiscriminatesLikelyCases) {
  auto a = Select(Scan("T"), "x", CmpOp::kEq, Value(int64_t{1}));
  auto b = Select(Scan("T"), "x", CmpOp::kEq, Value(int64_t{2}));
  EXPECT_NE(a->Hash(), b->Hash());
}

TEST(AlgebraTest, BaseCollections) {
  auto plan = SamplePlan();
  EXPECT_EQ(plan->BaseCollections(),
            (std::vector<std::string>{"Employee", "Book"}));
  EXPECT_EQ(plan->FirstBaseCollection(), "Employee");
}

TEST(AlgebraTest, WellFormedAcceptsValidShapes) {
  EXPECT_TRUE(SamplePlan()->CheckWellFormed().ok());
  EXPECT_TRUE(Submit("src", Scan("T"))->CheckWellFormed().ok());
  EXPECT_TRUE(Aggregate(Scan("T"), AggFunc::kCount, "")
                  ->CheckWellFormed()
                  .ok());
  EXPECT_TRUE(Sort(Dedup(Project(Scan("T"), {"a"})), "a")
                  ->CheckWellFormed()
                  .ok());
  EXPECT_TRUE(Union(Scan("A"), Scan("B"))->CheckWellFormed().ok());
}

TEST(AlgebraTest, WellFormedRejectsBadShapes) {
  Operator bad_scan(OpKind::kScan);
  EXPECT_FALSE(bad_scan.CheckWellFormed().ok());  // no collection

  Operator bad_select(OpKind::kSelect);
  bad_select.children.push_back(Scan("T"));
  EXPECT_FALSE(bad_select.CheckWellFormed().ok());  // no predicate

  Operator bad_join(OpKind::kJoin);
  bad_join.children.push_back(Scan("A"));
  EXPECT_FALSE(bad_join.CheckWellFormed().ok());  // arity

  // Nested submit is illegal.
  auto nested = Submit("a", Scan("T"));
  auto outer = Submit("b", std::move(nested));
  EXPECT_FALSE(outer->CheckWellFormed().ok());

  Operator bad_agg(OpKind::kAggregate);
  bad_agg.children.push_back(Scan("T"));
  bad_agg.agg_func = AggFunc::kSum;  // sum needs an attribute
  EXPECT_FALSE(bad_agg.CheckWellFormed().ok());
}

TEST(AlgebraTest, OpKindNamesRoundTrip) {
  for (int k = 0; k < kNumOpKinds; ++k) {
    OpKind kind = static_cast<OpKind>(k);
    auto parsed = OpKindFromName(OpKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(OpKindFromName("nonsense").ok());
}

TEST(AlgebraTest, PlanPrinterIndents) {
  auto plan = Submit("src", SamplePlan());
  std::string printed = PrintPlan(*plan);
  EXPECT_NE(printed.find("submit(@src)\n  join(name = author)\n"),
            std::string::npos);
  EXPECT_NE(printed.find("      scan(Employee)"), std::string::npos);
}

TEST(AlgebraTest, EvalCmpAllOperators) {
  Value a(int64_t{1}), b(int64_t{2});
  EXPECT_TRUE(*EvalCmp(a, CmpOp::kLt, b));
  EXPECT_TRUE(*EvalCmp(a, CmpOp::kLe, b));
  EXPECT_FALSE(*EvalCmp(a, CmpOp::kGt, b));
  EXPECT_FALSE(*EvalCmp(a, CmpOp::kGe, b));
  EXPECT_FALSE(*EvalCmp(a, CmpOp::kEq, b));
  EXPECT_TRUE(*EvalCmp(a, CmpOp::kNe, b));
  EXPECT_FALSE(EvalCmp(Value("x"), CmpOp::kLt, a).ok());
}

TEST(AlgebraTest, FlipCmpIsInvolutionOnPairs) {
  EXPECT_EQ(FlipCmp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipCmp(CmpOp::kGe), CmpOp::kLe);
  EXPECT_EQ(FlipCmp(CmpOp::kEq), CmpOp::kEq);
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                   CmpOp::kGt, CmpOp::kGe}) {
    EXPECT_EQ(FlipCmp(FlipCmp(op)), op);
  }
}

}  // namespace
}  // namespace algebra
}  // namespace disco
