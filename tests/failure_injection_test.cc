// Failure injection: wrappers that error at registration or execution,
// malformed plans, and formula evaluation failures -- everything must
// surface as a clean Status, never crash or silently succeed.

#include <gtest/gtest.h>

#include "mediator/mediator.h"

namespace disco {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;

/// A wrapper that misbehaves in configurable ways.
class FaultyWrapper : public wrapper::Wrapper {
 public:
  enum class Mode {
    kBadIdl,
    kStatsError,
    kExecuteError,
    kExecuteAfterN,  ///< succeed N times, then fail
  };

  FaultyWrapper(Mode mode, int budget = 0) : mode_(mode), budget_(budget) {}

  const std::string& name() const override { return name_; }

  std::string ExportInterfaces() const override {
    if (mode_ == Mode::kBadIdl) return "interface { broken";
    return "interface T { attribute Long k;\n"
           "  cardinality extent(out long CountObject, out long TotalSize,\n"
           "                     out long ObjectSize);\n"
           "}";
  }

  Result<CollectionStats> ExportStatistics(
      const std::string&) const override {
    if (mode_ == Mode::kStatsError) {
      return Status::ExecutionError("statistics collection failed");
    }
    CollectionStats stats;
    stats.extent = ExtentStats{100, 10000, 100};
    return stats;
  }

  std::string ExportCostRules() const override { return ""; }

  optimizer::SourceCapabilities ExportCapabilities() const override {
    return optimizer::SourceCapabilities::All();
  }

  Result<sources::ExecutionResult> Execute(
      const algebra::Operator&) override {
    if (mode_ == Mode::kExecuteError ||
        (mode_ == Mode::kExecuteAfterN && ++calls_ > budget_)) {
      return Status::ExecutionError("source connection lost");
    }
    sources::ExecutionResult result;
    result.columns = {"k"};
    result.tuples = {{Value(int64_t{1})}};
    result.total_ms = 10;
    result.first_tuple_ms = 5;
    return result;
  }

 private:
  std::string name_ = "faulty";
  Mode mode_;
  int budget_;
  int calls_ = 0;
};

TEST(FailureInjectionTest, BadIdlFailsRegistration) {
  mediator::Mediator med;
  Status s = med.RegisterWrapper(
      std::make_unique<FaultyWrapper>(FaultyWrapper::Mode::kBadIdl));
  EXPECT_TRUE(s.IsParseError());
  EXPECT_FALSE(med.catalog().HasSource("faulty"));
}

TEST(FailureInjectionTest, StatisticsErrorFailsRegistration) {
  mediator::Mediator med;
  Status s = med.RegisterWrapper(
      std::make_unique<FaultyWrapper>(FaultyWrapper::Mode::kStatsError));
  EXPECT_TRUE(s.IsExecutionError());
  // A failed registration leaves no trace...
  EXPECT_FALSE(med.catalog().HasSource("faulty"));
  EXPECT_FALSE(med.catalog().HasCollection("T"));
  // ...and the name can be registered again afterwards.
  EXPECT_TRUE(med.RegisterWrapper(std::make_unique<FaultyWrapper>(
                                      FaultyWrapper::Mode::kExecuteAfterN,
                                      99))
                  .ok());
  EXPECT_TRUE(med.catalog().HasSource("faulty"));
}

TEST(CatalogRemovalTest, RemoveSourceDropsItsCollections) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("a").ok());
  ASSERT_TRUE(catalog.RegisterSource("b").ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "a", CollectionSchema("X", {{"i", AttrType::kLong}}), {})
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "b", CollectionSchema("Y", {{"i", AttrType::kLong}}), {})
                  .ok());
  ASSERT_TRUE(catalog.RemoveSource("a").ok());
  EXPECT_FALSE(catalog.HasSource("a"));
  EXPECT_FALSE(catalog.HasCollection("X"));
  EXPECT_TRUE(catalog.HasCollection("Y"));
  EXPECT_TRUE(catalog.RemoveSource("a").IsNotFound());
}

TEST(FailureInjectionTest, ExecutionErrorSurfacesThroughQuery) {
  mediator::Mediator med;
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<FaultyWrapper>(
                                      FaultyWrapper::Mode::kExecuteError))
                  .ok());
  auto r = med.Query("SELECT k FROM T");
  ASSERT_FALSE(r.ok());
  // An exhausted submit surfaces as Unavailable, with the source name
  // prefixed via Status::WithContext.
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("source 'faulty'"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("connection lost"), std::string::npos);
}

TEST(FailureInjectionTest, MidPlanFailureAbortsExecution) {
  // The wrapper succeeds once (the first submit) then dies; the second
  // submit of a two-source-shape plan must fail the whole query (no
  // retries, no partial mode configured here).
  mediator::Mediator med;
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<FaultyWrapper>(
                                      FaultyWrapper::Mode::kExecuteAfterN, 1))
                  .ok());
  auto plan = algebra::Union(Submit("faulty", Scan("T")),
                             Submit("faulty", Scan("T")));
  auto r = med.Execute(*plan);
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();

  // Honest cost accounting under failure: the simulated clock still
  // charged the first (successful) submit. Re-run through a bare
  // executor, where elapsed_ms() stays observable after the error.
  FaultyWrapper faulty(FaultyWrapper::Mode::kExecuteAfterN, 1);
  mediator::MediatorCostParams params;
  mediator::MediatorExecutor exec({{"faulty", &faulty}}, params);
  auto r2 = exec.Execute(*plan);
  ASSERT_TRUE(r2.status().IsUnavailable()) << r2.status().ToString();
  // First submit: 10 ms source time + 50 ms round trip + shipped bytes;
  // second submit: the 50 ms round trip that discovered the failure.
  EXPECT_GE(exec.elapsed_ms(), 10 + params.ms_msg_latency * 2);
  ASSERT_EQ(exec.failed_sources().size(), 1u);
  EXPECT_EQ(exec.failed_sources()[0], "faulty");
}

TEST(FailureInjectionTest, MalformedPlansRejectedBeforeExecution) {
  mediator::Mediator med;
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<FaultyWrapper>(
                                      FaultyWrapper::Mode::kExecuteAfterN, 99))
                  .ok());
  algebra::Operator bad(algebra::OpKind::kSelect);  // no child, no pred
  EXPECT_TRUE(med.Execute(bad).status().IsInvalidArgument());
}

TEST(FailureInjectionTest, FormulaRuntimeErrorsCarryContext) {
  // A wrapper rule dividing by an exported statistic that is zero.
  costmodel::RuleRegistry registry;
  ASSERT_TRUE(costmodel::InstallGenericModel(
                  &registry, costmodel::CalibrationParams())
                  .ok());
  costlang::CompileSchema cs;
  cs.AddCollection("T", {"k"});
  auto rules = costlang::CompileRuleText(
      "scan(C) { TotalTime = 1 / C.CountObject; }", cs);
  ASSERT_TRUE(rules.ok());
  ASSERT_TRUE(registry.AddWrapperRules("src", std::move(*rules)).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("src").ok());
  CollectionStats empty_stats;  // CountObject == 0
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "src", CollectionSchema("T", {{"k", AttrType::kLong}}),
                      empty_stats)
                  .ok());
  costmodel::CostEstimator est(&registry, &catalog);
  auto r = est.EstimateAt(*Scan("T"), "src");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsExecutionError());
  EXPECT_NE(r.status().message().find("division by zero"),
            std::string::npos);
}

TEST(FailureInjectionTest, SelectivityWithoutPredicateErrors) {
  costmodel::RuleRegistry registry;
  ASSERT_TRUE(costmodel::InstallGenericModel(
                  &registry, costmodel::CalibrationParams())
                  .ok());
  costlang::CompileSchema cs;
  auto rules =
      costlang::CompileRuleText("scan(C) { TotalTime = selectivity(); }", cs);
  ASSERT_TRUE(rules.ok());
  ASSERT_TRUE(registry.AddWrapperRules("src", std::move(*rules)).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("src").ok());
  CollectionStats stats;
  stats.extent = ExtentStats{10, 100, 10};
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "src", CollectionSchema("T", {{"k", AttrType::kLong}}),
                      stats)
                  .ok());
  costmodel::CostEstimator est(&registry, &catalog);
  // A scan has no predicate: selectivity() must fail cleanly.
  auto r = est.EstimateAt(*Scan("T"), "src");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsExecutionError());
}

TEST(FailureInjectionTest, EmptyResultsFlowThroughEveryOperator) {
  mediator::Mediator med;
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}, {"v", AttrType::kLong}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i}), Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(src),
                                      wrapper::SimulatedWrapper::Options{}))
                  .ok());
  // Predicate matches nothing; distinct + order + project on top.
  auto r = med.Query(
      "SELECT DISTINCT v FROM T WHERE k > 1000 ORDER BY v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->tuples.empty());
}

}  // namespace
}  // namespace disco
