// common/thread_pool.h: the deterministic fan-out/fan-in primitive
// behind parallel candidate pricing (docs/PERFORMANCE.md).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace disco {
namespace {

TEST(ThreadPoolTest, ClampsSizeToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(257);
  for (auto& c : counts) c = 0;
  pool.ParallelFor(257, [&](int i) { counts[static_cast<size_t>(i)]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, SizeOneRunsInlineOnTheCallerThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(8,
                   [&](int i) { seen[static_cast<size_t>(i)] = std::this_thread::get_id(); });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, HandlesEmptyAndSmallBatches) {
  ThreadPool pool(8);
  int ran = 0;
  pool.ParallelFor(0, [&](int) { ++ran; });
  EXPECT_EQ(ran, 0);
  std::atomic<int> ran2{0};
  pool.ParallelFor(2, [&](int) { ran2++; });  // fewer tasks than threads
  EXPECT_EQ(ran2.load(), 2);
}

TEST(ThreadPoolTest, SlotWritesReduceDeterministically) {
  // The determinism contract: each task writes only its own slot; the
  // caller reduces in slot order. The reduced value must match a serial
  // run regardless of pool size.
  auto run = [](int pool_size) {
    ThreadPool pool(pool_size);
    std::vector<int64_t> slots(100);
    pool.ParallelFor(100, [&](int i) {
      slots[static_cast<size_t>(i)] = int64_t{1} * i * i - 3 * i + 7;
    });
    return std::accumulate(slots.begin(), slots.end(), int64_t{0});
  };
  const int64_t serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(7), serial);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(batch % 9, [&](int) { total++; });
  }
  int64_t expected = 0;
  for (int batch = 0; batch < 200; ++batch) expected += batch % 9;
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace disco
