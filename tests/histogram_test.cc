#include "catalog/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace disco {
namespace {

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value(x));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  auto h = EquiDepthHistogram::Build({}, 4);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->empty());
  EXPECT_EQ(h->EstimateEq(Value(int64_t{1})), 0.0);
  EXPECT_EQ(h->EstimateLt(Value(int64_t{1})), 0.0);
}

TEST(HistogramTest, RejectsNonPositiveBuckets) {
  EXPECT_FALSE(EquiDepthHistogram::Build(Ints({1}), 0).ok());
  EXPECT_FALSE(EquiDepthHistogram::Build(Ints({1}), -3).ok());
}

TEST(HistogramTest, RejectsMixedIncomparableTypes) {
  std::vector<Value> mixed{Value(int64_t{1}), Value("x")};
  EXPECT_FALSE(EquiDepthHistogram::Build(std::move(mixed), 2).ok());
}

TEST(HistogramTest, UniformEqEstimate) {
  std::vector<Value> vals;
  for (int64_t i = 0; i < 1000; ++i) vals.push_back(Value(i % 100));
  auto h = EquiDepthHistogram::Build(std::move(vals), 10);
  ASSERT_TRUE(h.ok());
  // Each of the 100 distinct values holds 1% of rows.
  EXPECT_NEAR(h->EstimateEq(Value(int64_t{42})), 0.01, 0.005);
}

TEST(HistogramTest, SkewedValueSpansBuckets) {
  // 90% of rows are the value 7.
  std::vector<Value> vals;
  for (int i = 0; i < 900; ++i) vals.push_back(Value(int64_t{7}));
  for (int64_t i = 0; i < 100; ++i) vals.push_back(Value(1000 + i));
  auto h = EquiDepthHistogram::Build(std::move(vals), 16);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateEq(Value(int64_t{7})), 0.9, 0.07);
  EXPECT_LT(h->EstimateEq(Value(int64_t{1050})), 0.05);
}

TEST(HistogramTest, SkewedStringValue) {
  std::vector<Value> vals;
  for (int i = 0; i < 950; ++i) vals.push_back(Value("paris"));
  for (int i = 0; i < 50; ++i) {
    vals.push_back(Value("city" + std::to_string(i)));
  }
  auto h = EquiDepthHistogram::Build(std::move(vals), 32);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->EstimateEq(Value("paris")), 0.95, 0.05);
}

TEST(HistogramTest, LtAtExtremes) {
  std::vector<Value> vals;
  for (int64_t i = 0; i < 100; ++i) vals.push_back(Value(i));
  auto h = EquiDepthHistogram::Build(std::move(vals), 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->EstimateLt(Value(int64_t{0})), 0.0);
  EXPECT_NEAR(h->EstimateLt(Value(int64_t{1000})), 1.0, 1e-9);
  EXPECT_NEAR(h->EstimateLt(Value(int64_t{50})), 0.5, 0.05);
}

TEST(HistogramTest, RangeMatchesLtDifference) {
  std::vector<Value> vals;
  for (int64_t i = 0; i < 500; ++i) vals.push_back(Value(i));
  auto h = EquiDepthHistogram::Build(std::move(vals), 10);
  ASSERT_TRUE(h.ok());
  double range = h->EstimateRange(Value(int64_t{100}), Value(int64_t{299}));
  EXPECT_NEAR(range, 0.4, 0.05);
}

// Property sweep: for several distributions and bucket counts, the
// estimates must be proper probabilities and EstimateLt must be monotone.
struct HistCase {
  int num_buckets;
  int distribution;  // 0 uniform, 1 zipf-ish, 2 clustered
};

class HistogramPropertyTest : public ::testing::TestWithParam<HistCase> {};

TEST_P(HistogramPropertyTest, BoundsAndMonotonicity) {
  const HistCase& c = GetParam();
  Rng rng(99 + static_cast<uint64_t>(c.distribution));
  std::vector<Value> vals;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = 0;
    switch (c.distribution) {
      case 0:
        v = rng.NextInt64(0, 9999);
        break;
      case 1:
        v = static_cast<int64_t>(10000.0 / (1.0 + 99.0 * rng.NextDouble()));
        break;
      case 2:
        v = (i % 3 == 0) ? 500 : rng.NextInt64(0, 999);
        break;
    }
    vals.push_back(Value(v));
  }
  auto h = EquiDepthHistogram::Build(std::move(vals), c.num_buckets);
  ASSERT_TRUE(h.ok());
  double prev = -1;
  for (int64_t probe = -100; probe <= 11000; probe += 500) {
    double eq = h->EstimateEq(Value(probe));
    double lt = h->EstimateLt(Value(probe));
    EXPECT_GE(eq, 0.0);
    EXPECT_LE(eq, 1.0);
    EXPECT_GE(lt, 0.0);
    EXPECT_LE(lt, 1.0);
    EXPECT_GE(lt, prev - 1e-9) << "EstimateLt must be monotone";
    prev = lt;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HistogramPropertyTest,
    ::testing::Values(HistCase{1, 0}, HistCase{4, 0}, HistCase{32, 0},
                      HistCase{4, 1}, HistCase{32, 1}, HistCase{4, 2},
                      HistCase{32, 2}));

}  // namespace
}  // namespace disco
