// Assorted edge cases across modules: single-argument selectivity, Ne
// predicates and index fallback, registry reindexing after query-scope
// additions, qualified attributes through the engine, and estimator
// behaviour on unions/projections.

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "costlang/compiler.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "mediator/mediator.h"
#include "sources/data_source.h"

namespace disco {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;

TEST(MiscEdgeTest, OneArgSelectivityUsesImpliedAttribute) {
  costmodel::RuleRegistry registry;
  ASSERT_TRUE(costmodel::InstallGenericModel(
                  &registry, costmodel::CalibrationParams())
                  .ok());
  costlang::CompileSchema cs;
  cs.AddCollection("T", {"k"});
  auto rules = costlang::CompileRuleText(
      // selectivity(V): implied attribute (the node's own), explicit
      // value -- here a different constant than the node's.
      "select(T, k <= V) { TotalTime = 1000 * selectivity(V + 10); }", cs);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_TRUE(registry.AddWrapperRules("s", std::move(*rules)).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("s").ok());
  CollectionStats stats;
  stats.extent = ExtentStats{100, 10000, 100};
  AttributeStats k;
  k.count_distinct = 100;
  k.min = Value(int64_t{0});
  k.max = Value(int64_t{99});
  stats.attributes["k"] = k;
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "s", CollectionSchema("T", {{"k", AttrType::kLong}}),
                      stats)
                  .ok());
  costmodel::CostEstimator est(&registry, &catalog);
  auto plan = Select(Scan("T"), "k", CmpOp::kLe, Value(int64_t{40}));
  auto r = est.EstimateAt(*plan, "s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // selectivity(k <= 50) on uniform [0,99] = 50/99.
  EXPECT_NEAR(r->root.total_time(), 1000 * 50.0 / 99.0, 0.5);
}

TEST(MiscEdgeTest, NePredicateNeverUsesTheIndex) {
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}}));
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i % 100})}).ok());
  }
  ASSERT_TRUE(t->CreateIndex("k").ok());
  src->env()->pool.Clear();
  auto r = src->Execute(
      *Select(Scan("T"), "k", CmpOp::kNe, Value(int64_t{50})));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 990u);
  // A != scan reads every data page (sequential), not index probes.
  EXPECT_GE(r->pages_read, t->heap().num_pages());
}

TEST(MiscEdgeTest, QueryScopeAdditionsVisibleAfterCandidateLookups) {
  costmodel::RuleRegistry registry;
  ASSERT_TRUE(costmodel::InstallGenericModel(
                  &registry, costmodel::CalibrationParams())
                  .ok());
  // Force the index to build.
  (void)registry.Candidates("s", algebra::OpKind::kScan);
  auto plan = Scan("T");
  registry.AddQueryCost("s", *plan,
                        costmodel::CostVector::Full(1, 2, 3, 4, 5, 6));
  const costmodel::CostVector* found = registry.QueryCost("s", *plan);
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->total_time(), 6);
}

TEST(MiscEdgeTest, QualifiedAttributesResolveThroughEngine) {
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}, {"v", AttrType::kLong}}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i}), Value(int64_t{i})}).ok());
  }
  // Predicate attribute arrives qualified, as a binder may produce it.
  auto r = src->Execute(
      *Select(Scan("T"), "T.k", CmpOp::kLt, Value(int64_t{5})));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 5u);
}

TEST(MiscEdgeTest, UnionEstimateAddsThroughSubmits) {
  costmodel::RuleRegistry registry;
  ASSERT_TRUE(costmodel::InstallGenericModel(
                  &registry, costmodel::CalibrationParams())
                  .ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("s").ok());
  for (const char* name : {"A", "B"}) {
    CollectionStats stats;
    stats.extent = ExtentStats{1000, 100000, 100};
    ASSERT_TRUE(catalog
                    .RegisterCollection(
                        "s",
                        CollectionSchema(name, {{"k", AttrType::kLong}}),
                        stats)
                    .ok());
  }
  costmodel::CostEstimator est(&registry, &catalog);
  auto u = algebra::Union(algebra::Submit("s", Scan("A")),
                          algebra::Submit("s", Scan("B")));
  auto r = est.Estimate(*u);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->root.count_object(), 2000);
  auto single = est.Estimate(*algebra::Submit("s", Scan("A")));
  ASSERT_TRUE(single.ok());
  EXPECT_GT(r->root.total_time(), 2 * single->root.total_time() * 0.99);
}

TEST(MiscEdgeTest, ValueKeyedRulesDistinguishNumericTypes) {
  // The exact-select hash index keys by Value::ToString: 77 and 77.0
  // must land in the same bucket (they compare equal).
  costmodel::RuleRegistry registry;
  ASSERT_TRUE(costmodel::InstallGenericModel(
                  &registry, costmodel::CalibrationParams())
                  .ok());
  costlang::CompileSchema cs;
  cs.AddCollection("T", {"k"});
  auto rules = costlang::CompileRuleText(
      "select(T, k = 77) { TotalTime = 5; }", cs);
  ASSERT_TRUE(rules.ok());
  ASSERT_TRUE(registry.AddWrapperRules("s", std::move(*rules)).ok());

  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("s").ok());
  CollectionStats stats;
  stats.extent = ExtentStats{100, 10000, 100};
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "s", CollectionSchema("T", {{"k", AttrType::kLong}}),
                      stats)
                  .ok());
  costmodel::CostEstimator est(&registry, &catalog);
  auto int_plan = Select(Scan("T"), "k", CmpOp::kEq, Value(int64_t{77}));
  auto dbl_plan = Select(Scan("T"), "k", CmpOp::kEq, Value(77.0));
  auto ri = est.EstimateAt(*int_plan, "s");
  auto rd = est.EstimateAt(*dbl_plan, "s");
  ASSERT_TRUE(ri.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_DOUBLE_EQ(ri->root.total_time(), 5);
  EXPECT_DOUBLE_EQ(rd->root.total_time(), 5);
}

TEST(MiscEdgeTest, ProjectThenAggregateThroughMediatorQuery) {
  mediator::Mediator med;
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}, {"grp", AttrType::kString}}));
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i}),
                           Value(std::string(1, char('a' + i % 3)))})
                    .ok());
  }
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(src),
                                      wrapper::SimulatedWrapper::Options{}))
                  .ok());
  auto r = med.Query("SELECT grp, sum(k) FROM T GROUP BY grp ORDER BY grp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 3u);
  // Sum over k=0..89 where k%3==0: 0+3+...+87 = 1305.
  EXPECT_EQ(r->tuples[0][0], Value("a"));
  EXPECT_DOUBLE_EQ(r->tuples[0][1].AsDouble(), 1305);
}

}  // namespace
}  // namespace disco
