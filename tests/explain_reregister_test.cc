// EXPLAIN output and the re-registration path (§2.1's administrative
// interface).

#include <gtest/gtest.h>

#include "mediator/mediator.h"

namespace disco {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;

class ExplainReregisterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    med_ = std::make_unique<mediator::Mediator>();
    auto src = sources::MakeRelationalSource("hr");
    storage::Table* t = src->CreateTable(CollectionSchema(
        "Employee", {{"id", AttrType::kLong}, {"salary", AttrType::kLong}}));
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(t->Insert({Value(int64_t{i}),
                             Value(int64_t{30000 + i * 10})})
                      .ok());
    }
    ASSERT_TRUE(t->CreateIndex("id").ok());
    wrapper::SimulatedWrapper::Options options;
    options.cost_rules = "scan(C) { TotalTime = 111; }";
    auto w = std::make_unique<wrapper::SimulatedWrapper>(std::move(src),
                                                         options);
    wrapper_ = w.get();
    ASSERT_TRUE(med_->RegisterWrapper(std::move(w)).ok());
  }

  std::unique_ptr<mediator::Mediator> med_;
  wrapper::SimulatedWrapper* wrapper_ = nullptr;
};

TEST_F(ExplainReregisterTest, ExplainRecordsWinningRules) {
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  costmodel::EstimateOptions options;
  options.collect_explain = true;
  auto plan = Submit(
      "hr", Select(Scan("Employee"), "salary", CmpOp::kGe,
                   Value(int64_t{35000})));
  auto r = est.Estimate(*plan, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->explain.size(), 3u);  // submit, select, scan (pre-order)
  EXPECT_EQ(r->explain[0].depth, 0);
  EXPECT_NE(r->explain[0].label.find("submit"), std::string::npos);
  EXPECT_EQ(r->explain[1].depth, 1);
  EXPECT_NE(r->explain[1].label.find("select"), std::string::npos);
  EXPECT_EQ(r->explain[1].source, "hr");
  EXPECT_EQ(r->explain[2].depth, 2);

  // The scan node's TotalTime came from the wrapper-scope rule.
  bool found = false;
  for (const costmodel::VarExplain& v : r->explain[2].vars) {
    if (v.var == costlang::CostVarId::kTotalTime) {
      EXPECT_EQ(v.scope, costmodel::Scope::kWrapper);
      EXPECT_DOUBLE_EQ(v.value, 111);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  std::string text = costmodel::FormatExplain(*r);
  EXPECT_NE(text.find("scan(Employee)"), std::string::npos);
  EXPECT_NE(text.find("[wrapper]"), std::string::npos);
  EXPECT_NE(text.find("TotalTime"), std::string::npos);
}

TEST_F(ExplainReregisterTest, ExplainMarksQueryScope) {
  auto subplan = Scan("Employee");
  med_->registry()->AddQueryCost(
      "hr", *subplan, costmodel::CostVector::Full(1, 1, 1, 1, 1, 42));
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  costmodel::EstimateOptions options;
  options.collect_explain = true;
  auto r = est.Estimate(*Submit("hr", Scan("Employee")), options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->explain.size(), 2u);
  EXPECT_TRUE(r->explain[1].from_query_scope);
  EXPECT_NE(costmodel::FormatExplain(*r).find("query scope"),
            std::string::npos);
}

TEST_F(ExplainReregisterTest, ExplainOffByDefault) {
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  auto r = est.Estimate(*Submit("hr", Scan("Employee")));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->explain.empty());
}

TEST_F(ExplainReregisterTest, ReRegisterReplacesRules) {
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  auto plan = Submit("hr", Scan("Employee"));
  auto before = est.EstimateAt(*Scan("Employee"), "hr");
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->root.total_time(), 111);

  // The implementor improves the rule and the administrator re-registers.
  wrapper_->mutable_options()->cost_rules = "scan(C) { TotalTime = 222; }";
  ASSERT_TRUE(med_->ReRegisterWrapper("hr").ok());

  auto after = est.EstimateAt(*Scan("Employee"), "hr");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->root.total_time(), 222);
}

TEST_F(ExplainReregisterTest, ReRegisterRefreshesStatistics) {
  storage::Table* t = wrapper_->source()->table("Employee");
  for (int i = 1000; i < 1500; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i}),
                           Value(int64_t{30000 + i * 10})})
                    .ok());
  }
  EXPECT_EQ(med_->catalog().Collection("Employee")->stats.extent.count_object,
            1000);
  ASSERT_TRUE(med_->ReRegisterWrapper("hr").ok());
  EXPECT_EQ(med_->catalog().Collection("Employee")->stats.extent.count_object,
            1500);
}

TEST_F(ExplainReregisterTest, ReRegisterDropsStaleQueryScope) {
  auto subplan = Scan("Employee");
  med_->registry()->AddQueryCost(
      "hr", *subplan, costmodel::CostVector::Full(1, 1, 1, 1, 1, 42));
  EXPECT_EQ(med_->registry()->num_query_entries(), 1);
  ASSERT_TRUE(med_->ReRegisterWrapper("hr").ok());
  EXPECT_EQ(med_->registry()->num_query_entries(), 0);
}

TEST_F(ExplainReregisterTest, ReRegisterUnknownWrapperFails) {
  EXPECT_TRUE(med_->ReRegisterWrapper("ghost").IsNotFound());
}

TEST_F(ExplainReregisterTest, ReRegisterDroppingAllRulesFallsBack) {
  wrapper_->mutable_options()->cost_rules = "";
  ASSERT_TRUE(med_->ReRegisterWrapper("hr").ok());
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  auto r = est.EstimateAt(*Scan("Employee"), "hr");
  ASSERT_TRUE(r.ok());
  // Back to the generic model: much more than the rule's constant.
  EXPECT_GT(r->root.total_time(), 1000);
}

TEST(RegistryRemovalTest, RemoveWrapperRulesCounts) {
  costmodel::RuleRegistry registry;
  costlang::CompileSchema schema;
  auto rules = costlang::CompileRuleText(
      "scan(C) { TotalTime = 1; }\nselect(C, P) { TotalTime = 2; }", schema);
  ASSERT_TRUE(rules.ok());
  ASSERT_TRUE(registry.AddWrapperRules("a", std::move(*rules)).ok());
  EXPECT_EQ(registry.num_rules(), 2);
  EXPECT_EQ(registry.RemoveWrapperRules("A"), 2);  // case-insensitive
  EXPECT_EQ(registry.num_rules(), 0);
  EXPECT_EQ(registry.RemoveWrapperRules("a"), 0);
  EXPECT_TRUE(
      registry.Candidates("a", algebra::OpKind::kScan).empty());
}

}  // namespace
}  // namespace disco
