// MediatorExecutor: submit dispatch, communication accounting, subquery
// records (the history feed), and the mediator-local operators.

#include "mediator/exec.h"

#include <gtest/gtest.h>

#include "sources/data_source.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace mediator {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;

class MediatorExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto src = sources::MakeRelationalSource("s1");
    storage::Table* t = src->CreateTable(CollectionSchema(
        "T", {{"k", AttrType::kLong}, {"name", AttrType::kString}}));
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(t->Insert({Value(int64_t{i}),
                             Value("n" + std::to_string(i % 10))})
                      .ok());
    }
    wrapper_ = std::make_unique<wrapper::SimulatedWrapper>(
        std::move(src), wrapper::SimulatedWrapper::Options{});

    auto src2 = sources::MakeRelationalSource("s2");
    storage::Table* u = src2->CreateTable(CollectionSchema(
        "U", {{"k2", AttrType::kLong}, {"w", AttrType::kLong}}));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(u->Insert({Value(int64_t{i}), Value(int64_t{i * i})}).ok());
    }
    wrapper2_ = std::make_unique<wrapper::SimulatedWrapper>(
        std::move(src2), wrapper::SimulatedWrapper::Options{});
  }

  MediatorExecutor MakeExecutor() {
    return MediatorExecutor(
        {{"s1", wrapper_.get()}, {"s2", wrapper2_.get()}}, params_);
  }

  MediatorCostParams params_;
  std::unique_ptr<wrapper::SimulatedWrapper> wrapper_;
  std::unique_ptr<wrapper::SimulatedWrapper> wrapper2_;
};

TEST_F(MediatorExecTest, SubmitReturnsSubanswerAndRecord) {
  MediatorExecutor exec = MakeExecutor();
  auto r = exec.Execute(*Submit("s1", Scan("T")));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 100u);
  ASSERT_EQ(r->subqueries.size(), 1u);
  const SubqueryRecord& rec = r->subqueries[0];
  EXPECT_EQ(rec.source, "s1");
  EXPECT_EQ(rec.subplan->ToString(), "scan(T)");
  EXPECT_DOUBLE_EQ(rec.measured.count_object(), 100);
  EXPECT_GT(rec.measured.total_time(), 0);
  EXPECT_GT(rec.measured.total_size(), 0);
  // Mediator time = source time + latency + bytes * per-byte.
  EXPECT_GT(r->measured_ms, rec.source_ms + params_.ms_msg_latency);
}

TEST_F(MediatorExecTest, CommunicationScalesWithBytes) {
  MediatorExecutor exec1 = MakeExecutor();
  auto all = exec1.Execute(*Submit("s1", Scan("T")));
  ASSERT_TRUE(all.ok());
  MediatorExecutor exec2 = MakeExecutor();
  auto few = exec2.Execute(*Submit(
      "s1", Select(Scan("T"), "k", CmpOp::kLe, Value(int64_t{4}))));
  ASSERT_TRUE(few.ok());
  // Shipping 100 rows costs measurably more than shipping 5.
  double comm_all = all->measured_ms - all->subqueries[0].source_ms;
  double comm_few = few->measured_ms - few->subqueries[0].source_ms;
  EXPECT_GT(comm_all, comm_few);
}

TEST_F(MediatorExecTest, ScanOutsideSubmitRejected) {
  MediatorExecutor exec = MakeExecutor();
  EXPECT_TRUE(exec.Execute(*Scan("T")).status().IsExecutionError());
}

TEST_F(MediatorExecTest, UnknownWrapperRejected) {
  MediatorExecutor exec = MakeExecutor();
  EXPECT_TRUE(
      exec.Execute(*Submit("ghost", Scan("T"))).status().IsNotFound());
}

TEST_F(MediatorExecTest, SourceNamesCaseInsensitive) {
  MediatorExecutor exec = MakeExecutor();
  EXPECT_TRUE(exec.Execute(*Submit("S1", Scan("T"))).ok());
}

TEST_F(MediatorExecTest, LocalSelectAndProject) {
  MediatorExecutor exec = MakeExecutor();
  auto plan = algebra::Project(
      Select(Submit("s1", Scan("T")), "k", CmpOp::kLt, Value(int64_t{10})),
      {"name"});
  auto r = exec.Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);
  EXPECT_EQ(r->columns, (std::vector<std::string>{"name"}));
}

TEST_F(MediatorExecTest, LocalJoinAcrossSources) {
  MediatorExecutor exec = MakeExecutor();
  auto plan = algebra::Join(Submit("s1", Scan("T")),
                            Submit("s2", Scan("U")),
                            algebra::JoinPredicate{"k", "k2"});
  auto r = exec.Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // k 0..9 match k2 0..9.
  EXPECT_EQ(r->tuples.size(), 10u);
  EXPECT_EQ(r->subqueries.size(), 2u);
  EXPECT_EQ(r->columns.size(), 4u);
}

TEST_F(MediatorExecTest, LocalSortDedupAggregateUnion) {
  MediatorExecutor exec = MakeExecutor();
  auto sorted = algebra::Sort(
      algebra::Dedup(algebra::Project(Submit("s1", Scan("T")), {"name"})),
      "name", /*ascending=*/false);
  auto r = exec.Execute(*sorted);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 10u);
  EXPECT_EQ(r->tuples.front()[0], Value("n9"));
  EXPECT_EQ(r->tuples.back()[0], Value("n0"));

  MediatorExecutor exec2 = MakeExecutor();
  auto agg = algebra::Aggregate(Submit("s1", Scan("T")),
                                algebra::AggFunc::kMax, "k");
  auto ar = exec2.Execute(*agg);
  ASSERT_TRUE(ar.ok());
  EXPECT_EQ(ar->tuples[0][0], Value(int64_t{99}));

  MediatorExecutor exec3 = MakeExecutor();
  auto u = algebra::Union(
      algebra::Project(Submit("s1", Scan("T")), {"k"}),
      algebra::Project(Submit("s2", Scan("U")), {"k2"}));
  auto ur = exec3.Execute(*u);
  ASSERT_TRUE(ur.ok());
  EXPECT_EQ(ur->tuples.size(), 110u);
}

TEST_F(MediatorExecTest, UnionArityMismatchRejected) {
  MediatorExecutor exec = MakeExecutor();
  auto u = algebra::Union(Submit("s1", Scan("T")), Submit("s2", Scan("U")));
  // Both have 2 columns: fine. Mismatch via project:
  auto bad = algebra::Union(
      algebra::Project(Submit("s1", Scan("T")), {"k"}),
      Submit("s2", Scan("U")));
  EXPECT_TRUE(exec.Execute(*bad).status().IsExecutionError());
}

TEST_F(MediatorExecTest, TimeNextRecordedForMultiRowResults) {
  MediatorExecutor exec = MakeExecutor();
  auto r = exec.Execute(*Submit("s1", Scan("T")));
  ASSERT_TRUE(r.ok());
  const costmodel::CostVector& m = r->subqueries[0].measured;
  EXPECT_GT(m.time_first(), 0);
  EXPECT_GT(m.time_next(), 0);
  EXPECT_LE(m.time_first(), m.total_time());
}

}  // namespace
}  // namespace mediator
}  // namespace disco
