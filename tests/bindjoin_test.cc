// Bind joins (extension, paper §7 motivation): algebra shape, cost
// rules, executor correctness, and the optimizer choosing them when a
// tiny filtered outer probes a huge indexed inner.

#include <gtest/gtest.h>

#include "algebra/plan_printer.h"
#include "mediator/mediator.h"
#include "optimizer/optimizer.h"

namespace disco {
namespace {

using algebra::BindJoin;
using algebra::CmpOp;
using algebra::JoinPredicate;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;

TEST(BindJoinAlgebraTest, ShapeAndIdentity) {
  auto bj = BindJoin(Submit("s", Scan("Meta")), "img", "Image",
                     JoinPredicate{"photoId", "id"});
  EXPECT_TRUE(bj->CheckWellFormed().ok());
  EXPECT_EQ(bj->ToString(),
            "bindjoin(@img.Image, submit(@s, scan(Meta)), photoId = id)");
  EXPECT_EQ(bj->BaseCollections(),
            (std::vector<std::string>{"Meta", "Image"}));
  auto clone = bj->Clone();
  EXPECT_TRUE(bj->Equals(*clone));
  EXPECT_EQ(bj->Hash(), clone->Hash());

  algebra::Operator bad(algebra::OpKind::kBindJoin);
  bad.children.push_back(Scan("X"));
  bad.join_pred = JoinPredicate{"a", "b"};
  EXPECT_FALSE(bad.CheckWellFormed().ok());  // no source/collection
}

/// A federation with image-library shape: a huge "Image" collection at
/// one source (indexed id) and a small metadata collection at another.
class BindJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mediator::MediatorOptions options;
    options.record_history = false;
    med_ = std::make_unique<mediator::Mediator>(options);

    auto img = sources::MakeObjectDbSource("img");
    storage::Table* images = img->CreateTable(CollectionSchema(
        "Image", {{"id", AttrType::kLong}, {"feature", AttrType::kLong}}));
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(images
                      ->Insert({Value(int64_t{i}),
                                Value(int64_t{(i * 31) % 1000})})
                      .ok());
    }
    ASSERT_TRUE(images->CreateIndex("id").ok());
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(img),
                            wrapper::SimulatedWrapper::Options{}))
                    .ok());

    auto meta = sources::MakeRelationalSource("meta");
    storage::Table* docs = meta->CreateTable(CollectionSchema(
        "Meta", {{"photoId", AttrType::kLong}, {"year", AttrType::kLong}}));
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(docs->Insert({Value(int64_t{i * 10}),
                                Value(int64_t{1990 + i % 10})})
                      .ok());
    }
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(meta),
                            wrapper::SimulatedWrapper::Options{}))
                    .ok());
  }

  std::unique_ptr<mediator::Mediator> med_;
};

TEST_F(BindJoinTest, ExecutorProducesJoinResult) {
  // Hand-built plan: probe Image per metadata row of year 1999.
  auto plan = BindJoin(
      Submit("meta", Select(Scan("Meta"), "year", CmpOp::kEq,
                            Value(int64_t{1999}))),
      "img", "Image", JoinPredicate{"photoId", "id"});
  auto r = med_->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // 200 metadata rows with year 1999, each matching exactly one image.
  EXPECT_EQ(r->tuples.size(), 200u);
  EXPECT_EQ(r->columns,
            (std::vector<std::string>{"photoId", "year", "id", "feature"}));
  for (const storage::Tuple& t : r->tuples) {
    EXPECT_EQ(t[0], t[2]);  // photoId == id
  }
}

TEST_F(BindJoinTest, ExecutorCachesDuplicateKeys) {
  // All probed keys equal: only one probe subquery should be issued.
  mediator::MediatorExecutor exec(
      {{"img", med_->wrapper("img")}, {"meta", med_->wrapper("meta")}},
      mediator::MediatorCostParams{}, &med_->catalog());
  auto everything = BindJoin(
      Submit("meta", Select(Scan("Meta"), "photoId", CmpOp::kEq,
                            Value(int64_t{500}))),
      "img", "Image", JoinPredicate{"photoId", "id"});
  auto r = exec.Execute(*everything);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // subqueries: 1 submit (outer) + 1 probe.
  EXPECT_EQ(r->subqueries.size(), 2u);
}

TEST_F(BindJoinTest, SameResultAsRegularJoin) {
  const char* sql =
      "SELECT photoId, feature FROM Meta, Image "
      "WHERE Meta.photoId = Image.id AND year = 1995";
  auto bound = med_->Analyze(sql);
  ASSERT_TRUE(bound.ok());
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  optimizer::Optimizer opt(&est, &med_->capabilities());

  optimizer::OptimizerOptions with, without;
  with.enable_bind_join = true;
  without.enable_bind_join = false;
  auto p1 = opt.Optimize(*bound, with);
  auto p2 = opt.Optimize(*bound, without);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  ASSERT_TRUE(p2.ok());

  auto r1 = med_->Execute(*p1->plan);
  auto r2 = med_->Execute(*p2->plan);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->tuples.size(), r2->tuples.size());
}

TEST_F(BindJoinTest, OptimizerChoosesBindJoinForTinyOuterHugeInner) {
  // 200 filtered metadata rows vs 20000 images at 9 ms each: probing
  // beats scanning/shipping the image collection.
  auto plan = med_->Plan(
      "SELECT photoId, feature FROM Meta, Image "
      "WHERE Meta.photoId = Image.id AND year = 1995");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->plan->ToString().find("bindjoin"), std::string::npos)
      << algebra::PrintPlan(*plan->plan);

  // ... and the choice is actually faster than the no-bind-join plan.
  auto bound = med_->Analyze(
      "SELECT photoId, feature FROM Meta, Image "
      "WHERE Meta.photoId = Image.id AND year = 1995");
  ASSERT_TRUE(bound.ok());
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  optimizer::Optimizer opt(&est, &med_->capabilities());
  optimizer::OptimizerOptions without;
  without.enable_bind_join = false;
  auto fallback = opt.Optimize(*bound, without);
  ASSERT_TRUE(fallback.ok());

  auto bind_run = med_->Execute(*plan->plan);
  auto fallback_run = med_->Execute(*fallback->plan);
  ASSERT_TRUE(bind_run.ok());
  ASSERT_TRUE(fallback_run.ok());
  EXPECT_LT(bind_run->measured_ms, fallback_run->measured_ms);
}

TEST_F(BindJoinTest, GenericModelPricesUnindexedProbesAsScans) {
  costmodel::CostEstimator est(med_->registry(), &med_->catalog());
  auto outer = Submit("meta", Select(Scan("Meta"), "year", CmpOp::kEq,
                                     Value(int64_t{1999})));
  // Probing the indexed id is far cheaper than probing the unindexed
  // feature attribute (each such probe is a full scan).
  auto indexed = BindJoin(outer->Clone(), "img", "Image",
                          JoinPredicate{"photoId", "id"});
  auto unindexed = BindJoin(outer->Clone(), "img", "Image",
                            JoinPredicate{"photoId", "feature"});
  auto e1 = est.Estimate(*indexed);
  auto e2 = est.Estimate(*unindexed);
  ASSERT_TRUE(e1.ok()) << e1.status().ToString();
  ASSERT_TRUE(e2.ok());
  EXPECT_LT(e1->root.total_time() * 5, e2->root.total_time());
}

}  // namespace
}  // namespace disco
