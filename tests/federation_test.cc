// Deadline-aware scatter-gather federation (docs/ROBUSTNESS.md):
// concurrent submits charged max-not-sum with byte-identical results
// for any pool size, hedged requests against declared-equivalent
// replicas, cancellation propagation, deadline-expiry degradation, and
// the per-query retry budget shared between retries and hedges.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mediator/mediator.h"
#include "optimizer/join_enum.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

using algebra::Scan;
using algebra::Submit;
using mediator::ExecWarning;
using mediator::FederationOptions;
using mediator::Mediator;
using mediator::MediatorOptions;
using mediator::RetryPolicy;
using wrapper::FaultInjectingWrapper;
using wrapper::FaultProfile;

/// Builds `source` with one single-column collection `collection`
/// holding `rows` Long tuples, behind a FaultInjectingWrapper.
std::unique_ptr<FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<FaultInjectingWrapper>(std::move(inner), profile);
}

/// A four-way union over sources a..d. Source `a` is flaky (seed 18
/// fails twice and recovers on the third attempt); every source carries
/// 100 ms of injected latency so overlap matters.
std::unique_ptr<algebra::Operator> FourWayUnion() {
  return algebra::Union(
      algebra::Union(Submit("a", Scan("A")), Submit("b", Scan("B"))),
      algebra::Union(Submit("c", Scan("C")), Submit("d", Scan("D"))));
}

std::unique_ptr<Mediator> MakeFourSourceMediator(
    const FederationOptions& fed) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.fault_tolerance.federation = fed;
  auto medp = std::make_unique<Mediator>(opts);
  Mediator& med = *medp;
  EXPECT_TRUE(
      med.RegisterWrapper(
             MakeSource("a", "A", 10,
                        FaultProfile::Flaky(0.3, 18).WithLatency(100)))
          .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("b", "B", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("c", "C", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("d", "D", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  return medp;
}

/// Everything observable about one federation run, rendered to strings
/// so runs can be compared byte-for-byte.
struct RunSnapshot {
  bool ok = false;
  std::vector<storage::Tuple> tuples;
  std::vector<std::string> warnings;
  double measured_ms = 0;
  std::string trace_json;
};

RunSnapshot RunFourSource(const FederationOptions& fed) {
  std::unique_ptr<Mediator> med = MakeFourSourceMediator(fed);
  auto plan = FourWayUnion();
  auto r = med->Execute(*plan);
  RunSnapshot snap;
  snap.ok = r.ok();
  if (!r.ok()) return snap;
  snap.tuples = r->tuples;
  for (const ExecWarning& w : r->warnings) snap.warnings.push_back(w.ToString());
  snap.measured_ms = r->measured_ms;
  if (r->trace != nullptr) snap.trace_json = r->trace->ToChromeJson();
  return snap;
}

TEST(FederationTest, ScatterMatchesSerialTuplesAndWarnings) {
  RunSnapshot serial = RunFourSource(FederationOptions{});  // inactive
  FederationOptions fed;
  fed.threads = 4;
  RunSnapshot scatter = RunFourSource(fed);

  ASSERT_TRUE(serial.ok);
  ASSERT_TRUE(scatter.ok);
  EXPECT_EQ(scatter.tuples, serial.tuples);
  // Same degradations in the same order: `a` recovered on attempt 3.
  EXPECT_EQ(scatter.warnings, serial.warnings);
  ASSERT_EQ(scatter.warnings.size(), 1u);
  EXPECT_NE(scatter.warnings[0].find("recovered after 2 failed attempts"),
            std::string::npos)
      << scatter.warnings[0];
  // Overlap pays: four ~100ms submits charged max-not-sum.
  EXPECT_LT(scatter.measured_ms, serial.measured_ms);
}

TEST(FederationTest, ByteIdenticalAcrossPoolSizes) {
  // threads=1 runs the scatter machinery inline (activated here by the
  // deadline knob); 2/4/8 fan source groups onto a real pool. Results,
  // warnings, the simulated clock, and every trace byte must match.
  RunSnapshot base;
  for (int threads : {1, 2, 4, 8}) {
    FederationOptions fed;
    fed.threads = threads;
    fed.deadline_ms = 1e9;  // never expires; keeps the scatter path on
    RunSnapshot snap = RunFourSource(fed);
    ASSERT_TRUE(snap.ok) << "threads=" << threads;
    if (threads == 1) {
      base = std::move(snap);
      ASSERT_FALSE(base.trace_json.empty());
      continue;
    }
    EXPECT_EQ(snap.tuples, base.tuples) << "threads=" << threads;
    EXPECT_EQ(snap.warnings, base.warnings) << "threads=" << threads;
    EXPECT_EQ(snap.measured_ms, base.measured_ms) << "threads=" << threads;
    EXPECT_EQ(snap.trace_json, base.trace_json) << "threads=" << threads;
  }
}

TEST(FederationTest, ScatterAtLeastHalvesFourSourceFanout) {
  // The ISSUE acceptance bar: >= 2x simulated-latency improvement on a
  // 4-source scatter (it is ~4x here; the flaky source's retries keep
  // it the critical path).
  RunSnapshot serial = RunFourSource(FederationOptions{});
  FederationOptions fed;
  fed.threads = 4;
  RunSnapshot scatter = RunFourSource(fed);
  ASSERT_TRUE(serial.ok);
  ASSERT_TRUE(scatter.ok);
  EXPECT_LE(scatter.measured_ms * 2, serial.measured_ms)
      << "scatter " << scatter.measured_ms << " ms vs serial "
      << serial.measured_ms << " ms";
}

TEST(FederationTest, DeadlineYieldsPartialUnionWithWarning) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.federation.threads = 2;
  opts.fault_tolerance.federation.deadline_ms = 1000;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("fast", "F", 10, FaultProfile{})).ok());
  ASSERT_TRUE(med.RegisterWrapper(
                     MakeSource("slow", "S", 10, FaultProfile::Slow(5000)))
                  .ok());

  auto plan = algebra::Union(Submit("fast", Scan("F")),
                             Submit("slow", Scan("S")));
  auto r = med.Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);  // the branch that beat the deadline
  ASSERT_EQ(r->warnings.size(), 1u);
  EXPECT_EQ(r->warnings[0].source, "slow");
  EXPECT_NE(r->warnings[0].message.find("query deadline (1000.0 ms) expired"),
            std::string::npos)
      << r->warnings[0].ToString();
  EXPECT_NE(r->warnings[0].message.find("union branch dropped"),
            std::string::npos)
      << r->warnings[0].ToString();
  EXPECT_EQ(med.metrics()->counter("disco.mediator.deadline.expired_submits")
                ->value(),
            1);
  EXPECT_EQ(med.metrics()->counter("disco.mediator.deadline.expired_queries")
                ->value(),
            1);
  // The abandoned submit charges exactly up to the deadline, never the
  // slow source's full latency.
  EXPECT_LT(r->measured_ms, 2000);
}

TEST(FederationTest, DeadlineAbortsJoinWithoutBlamingTheSource) {
  // Dropping a join input would change the answer, so an expired
  // deadline on one aborts the query -- but expiry is the mediator's
  // decision: the source keeps a clean breaker record and is not
  // replan-eligible.
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.federation.threads = 2;
  opts.fault_tolerance.federation.deadline_ms = 1000;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("fast", "F", 10, FaultProfile{})).ok());
  ASSERT_TRUE(med.RegisterWrapper(
                     MakeSource("slow", "S", 10, FaultProfile::Slow(5000)))
                  .ok());

  auto plan = algebra::Join(Submit("fast", Scan("F")),
                            Submit("slow", Scan("S")),
                            algebra::JoinPredicate{"k", "k"});
  auto r = med.Execute(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("query deadline (1000.0 ms) expired"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(med.health()->Health("slow").total_failures, 0);
}

TEST(FederationTest, CancellationClipsSiblingsOfAFatalFailure) {
  // A dead join input is fatal; the slow sibling still in flight at
  // that moment is cancelled instead of running to completion.
  MediatorOptions opts;
  opts.fault_tolerance.retry = RetryPolicy::Standard(1);
  opts.fault_tolerance.federation.threads = 2;
  opts.fault_tolerance.federation.deadline_ms = 1e9;  // scatter on
  opts.replan_on_source_failure = false;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("dead", "X", 10, FaultProfile::Dead()))
          .ok());
  ASSERT_TRUE(med.RegisterWrapper(
                     MakeSource("slow", "S", 10, FaultProfile::Slow(5000)))
                  .ok());

  auto plan = algebra::Join(Submit("dead", Scan("X")),
                            Submit("slow", Scan("S")),
                            algebra::JoinPredicate{"k", "k"});
  auto r = med.Execute(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_EQ(med.metrics()->counter("disco.mediator.cancellations")->value(),
            1);
  // The cancelled sibling's latency is not charged: the query ends when
  // the fatal failure lands, far before the slow source would answer.
  EXPECT_LT(med.sim_now_ms(), 2500) << med.sim_now_ms();
}

/// East/west replicas of the same 10 rows; east is the primary the plan
/// names, west the DeclareEquivalent hedge target.
struct HedgeRig {
  std::unique_ptr<Mediator> med;
  FaultInjectingWrapper* east = nullptr;
  std::unique_ptr<algebra::Operator> plan;
};

HedgeRig MakeHedgeRig(MediatorOptions opts) {
  HedgeRig rig;
  rig.med = std::make_unique<Mediator>(std::move(opts));
  auto east = MakeSource("east", "E", 10, FaultProfile{});
  rig.east = east.get();
  EXPECT_TRUE(rig.med->RegisterWrapper(std::move(east)).ok());
  EXPECT_TRUE(
      rig.med->RegisterWrapper(MakeSource("west", "W", 10, FaultProfile{}))
          .ok());
  EXPECT_TRUE(rig.med->DeclareEquivalent("E", "W").ok());
  rig.plan = Submit("east", Scan("E"));
  return rig;
}

TEST(FederationTest, HedgeBeatsSlowPrimary) {
  MediatorOptions opts;
  opts.fault_tolerance.federation.hedge = true;  // min_samples = 8
  HedgeRig rig = MakeHedgeRig(opts);

  // Warm the latency profile: eight healthy submits teach the mediator
  // what "normal" east latency looks like.
  for (int i = 0; i < 8; ++i) {
    auto r = rig.med->Execute(*rig.plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->warnings.empty());
  }
  EXPECT_EQ(rig.med->latency_profile()->count("east"), 8);
  EXPECT_EQ(
      rig.med->metrics()->counter("disco.mediator.hedges.launched")->value(),
      0);

  // East develops a deterministic 2-6 s tail; the next query hedges to
  // west and keeps the replica's (identical) answer.
  rig.east->SetProfile(FaultProfile::Slow(4000));
  auto r = rig.med->Execute(*rig.plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);
  ASSERT_EQ(r->warnings.size(), 1u);
  EXPECT_NE(r->warnings[0].message.find("replica answered first"),
            std::string::npos)
      << r->warnings[0].ToString();
  EXPECT_EQ(
      rig.med->metrics()->counter("disco.mediator.hedges.launched")->value(),
      1);
  EXPECT_EQ(rig.med->metrics()->counter("disco.mediator.hedges.won")->value(),
            1);
  // The abandoned slow primary is cancelled, not awaited...
  EXPECT_EQ(
      rig.med->metrics()->counter("disco.mediator.hedges.cancelled")->value(),
      1);
  // ...so the hedged query costs threshold + replica latency, a small
  // fraction of the >= 2000 ms the slow primary would have charged.
  EXPECT_LT(r->measured_ms, 2000) << r->measured_ms;
}

TEST(FederationTest, HedgeSharesTheQueryRetryBudget) {
  // Budget 1: the flaky sibling's recovery retry spends it, so the slow
  // primary that *wants* to hedge is refused -- hedges draw from the
  // same per-query budget as retries (no hidden extra load).
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.fault_tolerance.retry.query_retry_budget = 1;
  opts.fault_tolerance.federation.hedge = true;
  HedgeRig rig = MakeHedgeRig(opts);
  ASSERT_TRUE(
      rig.med->RegisterWrapper(MakeSource("flaky", "G", 10,
                                          FaultProfile::Outage(1)))
          .ok());

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.med->Execute(*rig.plan).ok());
  }
  rig.east->SetProfile(FaultProfile::Slow(4000));
  auto plan = algebra::Union(Submit("east", Scan("E")),
                             Submit("flaky", Scan("G")));
  auto r = rig.med->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 20u);  // both branches answered
  ASSERT_EQ(r->warnings.size(), 1u);
  EXPECT_EQ(r->warnings[0].source, "flaky");
  EXPECT_NE(r->warnings[0].message.find("recovered after 1 failed attempt"),
            std::string::npos)
      << r->warnings[0].ToString();
  EXPECT_EQ(
      rig.med->metrics()->counter("disco.mediator.hedges.launched")->value(),
      0);
  EXPECT_EQ(rig.med->metrics()
                ->counter("disco.mediator.retry_budget.exhausted")
                ->value(),
            1);
  // Without the hedge the slow primary is simply awaited.
  EXPECT_GT(r->measured_ms, 2000) << r->measured_ms;
}

TEST(FederationTest, RetryBudgetCapsScatterRetries) {
  // Two dead branches, per-submit budget 5, per-query budget 1: each
  // scatter group sees the budget remaining at scatter start (optimistic
  // split), so each dead source gets at most one retry instead of four.
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(5);
  opts.fault_tolerance.retry.query_retry_budget = 1;
  opts.fault_tolerance.federation.threads = 2;
  opts.breaker.failure_threshold = 100;  // keep breakers out of this test
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("good", "G", 10, FaultProfile{})).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("bad1", "X", 10, FaultProfile::Dead()))
          .ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("bad2", "Y", 10, FaultProfile::Dead()))
          .ok());

  auto plan = algebra::Union(
      algebra::Union(Submit("good", Scan("G")), Submit("bad1", Scan("X"))),
      Submit("bad2", Scan("Y")));
  auto r = med.Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);
  ASSERT_EQ(r->warnings.size(), 2u);
  for (const ExecWarning& w : r->warnings) {
    EXPECT_EQ(w.attempts, 2) << w.ToString();
    EXPECT_NE(w.message.find("query retry budget exhausted"),
              std::string::npos)
        << w.ToString();
  }
  // 1 good + 2 attempts per dead branch -- not 1 + 5 + 5.
  EXPECT_EQ(med.metrics()->counter("disco.exec.submit_attempts")->value(), 5);
}

TEST(FederationTest, OpenBreakerShortCircuitsTheScatterPath) {
  // Query 1 burns three attempts against a dead source and opens its
  // breaker; query 2's scatter submit is rejected at the gate without a
  // single attempt -- no retry storm against an open breaker.
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.fault_tolerance.federation.threads = 2;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("good", "G", 10, FaultProfile{})).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("dead", "X", 10, FaultProfile::Dead()))
          .ok());

  auto plan = algebra::Union(Submit("good", Scan("G")),
                             Submit("dead", Scan("X")));
  auto r1 = med.Execute(*plan);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(med.health()->Health("dead").state, mediator::BreakerState::kOpen);
  const int64_t attempts_after_q1 =
      med.metrics()->counter("disco.exec.submit_attempts")->value();
  EXPECT_EQ(attempts_after_q1, 4);  // 1 good + 3 dead

  auto r2 = med.Execute(*plan);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r2->warnings.size(), 1u);
  EXPECT_NE(r2->warnings[0].message.find("circuit breaker open"),
            std::string::npos)
      << r2->warnings[0].ToString();
  EXPECT_EQ(med.metrics()->counter("disco.exec.submit_attempts")->value(),
            attempts_after_q1 + 1);  // only the good source ran
  EXPECT_EQ(med.metrics()->counter("disco.exec.breaker_rejections")->value(),
            1);
}

TEST(FederationTest, HalfOpenBreakerAdmitsOneProbeAcrossTheScatter) {
  // Regression: a half-open breaker used to admit *every* scatter
  // submit of the query as a probe. With single-probe admission, a
  // query carrying two submits to the half-open source sends exactly
  // one attempt -- the probe -- and rejects the other at the gate.
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(1);  // no retries
  opts.fault_tolerance.federation.threads = 2;
  opts.breaker.cooldown_ms = 150;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("good", "G", 10, FaultProfile{})).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("dead", "X", 10, FaultProfile::Dead()))
          .ok());

  // Three single-attempt failures open the breaker.
  auto open_plan = algebra::Union(Submit("good", Scan("G")),
                                  Submit("dead", Scan("X")));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(med.Execute(*open_plan).ok());
  }
  ASSERT_EQ(med.health()->Health("dead").state,
            mediator::BreakerState::kOpen);
  // Good-only filler queries walk the simulated clock (~100 ms each of
  // round trips) past the cooldown: the breaker turns half-open.
  auto filler = Submit("good", Scan("G"));
  while (med.health()->StateAt("dead", med.sim_now_ms()) ==
         mediator::BreakerState::kOpen) {
    ASSERT_TRUE(med.Execute(*filler).ok());
  }
  ASSERT_EQ(med.health()->StateAt("dead", med.sim_now_ms()),
            mediator::BreakerState::kHalfOpen);
  const int64_t attempts_before =
      med.metrics()->counter("disco.exec.submit_attempts")->value();

  // One query, two submits to the half-open source.
  auto probe_plan = algebra::Union(
      algebra::Union(Submit("good", Scan("G")), Submit("dead", Scan("X"))),
      Submit("dead", Scan("X")));
  auto r = med.Execute(*probe_plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);  // both dead branches dropped
  EXPECT_EQ(r->warnings.size(), 2u);
  // 1 good + exactly 1 probe -- not one probe per half-open submit.
  EXPECT_EQ(med.metrics()->counter("disco.exec.submit_attempts")->value(),
            attempts_before + 2);
  EXPECT_EQ(med.health()->Health("dead").state,
            mediator::BreakerState::kOpen);
}

TEST(FederationTest, HedgeRefusesANonClosedReplica) {
  // Regression: hedging used to consult only the latency profile, so a
  // slow primary could hedge onto a replica whose breaker was open --
  // or half-open, stealing its single probe slot. Hedge candidates must
  // be closed-breaker sources.
  MediatorOptions opts;
  opts.fault_tolerance.federation.hedge = true;
  opts.breaker.cooldown_ms = 1;  // west turns half-open almost at once
  HedgeRig rig = MakeHedgeRig(opts);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.med->Execute(*rig.plan).ok());
  }

  // West's breaker opens; by the next query it is half-open (1 ms
  // cooldown), which is still not a hedge-eligible state.
  for (int i = 0; i < 3; ++i) {
    rig.med->health()->RecordFailure("west", rig.med->sim_now_ms());
  }
  rig.east->SetProfile(FaultProfile::Slow(4000));
  auto r = rig.med->Execute(*rig.plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 10u);
  EXPECT_EQ(
      rig.med->metrics()->counter("disco.mediator.hedges.launched")->value(),
      0);
  // No hedge fired: the slow primary was simply awaited.
  EXPECT_GT(r->measured_ms, 2000) << r->measured_ms;
}

TEST(FederationTest, SlowAndStuckStreamProfilesAreDeterministic) {
  // The seeded tail-latency generators behind the deadline and hedging
  // experiments reproduce bit-for-bit.
  auto run = [] {
    FederationOptions fed;
    fed.threads = 4;
    MediatorOptions opts;
    opts.fault_tolerance.allow_partial = true;
    opts.fault_tolerance.federation = fed;
    Mediator med(opts);
    EXPECT_TRUE(med.RegisterWrapper(
                       MakeSource("s1", "A", 10, FaultProfile::Slow(300, 0.5)))
                    .ok());
    EXPECT_TRUE(
        med.RegisterWrapper(MakeSource("s2", "B", 10,
                                       FaultProfile::StuckStream(2, 700)))
            .ok());
    auto plan = algebra::Union(Submit("s1", Scan("A")),
                               Submit("s2", Scan("B")));
    RunSnapshot snap;
    for (int i = 0; i < 3; ++i) {
      auto r = med.Execute(*plan);
      EXPECT_TRUE(r.ok());
      snap.measured_ms += r->measured_ms;
      snap.tuples = r->tuples;
    }
    return snap;
  };
  RunSnapshot one = run();
  RunSnapshot two = run();
  EXPECT_EQ(one.measured_ms, two.measured_ms);
  EXPECT_EQ(one.tuples, two.tuples);
}

TEST(FederationTest, MonitorReportSurfacesFederationState) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry.query_retry_budget = 7;
  opts.fault_tolerance.federation.threads = 4;
  opts.fault_tolerance.federation.deadline_ms = 1000;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("fast", "F", 10, FaultProfile{})).ok());
  ASSERT_TRUE(med.RegisterWrapper(
                     MakeSource("slow", "S", 10, FaultProfile::Slow(5000)))
                  .ok());
  auto plan = algebra::Union(Submit("fast", Scan("F")),
                             Submit("slow", Scan("S")));
  ASSERT_TRUE(med.Execute(*plan).ok());

  mediator::MonitorSnapshot snap = med.MonitorReport();
  EXPECT_EQ(snap.federation_threads, 4);
  EXPECT_EQ(snap.deadline_ms, 1000);
  EXPECT_FALSE(snap.hedging);
  EXPECT_EQ(snap.query_retry_budget, 7);
  EXPECT_EQ(snap.scatter_queries, 1);
  EXPECT_EQ(snap.scatter_submits, 2);
  EXPECT_EQ(snap.deadline_expired_submits, 1);
  EXPECT_EQ(snap.deadline_expired_queries, 1);
  EXPECT_NE(snap.ToText().find("federation: 4 threads, deadline 1000.0 ms"),
            std::string::npos)
      << snap.ToText();
  EXPECT_NE(snap.ToJson().find("\"federation\":{\"threads\":4"),
            std::string::npos)
      << snap.ToJson();
}

TEST(FederationTest, ResponseTimeObjectivePricesSubmitsMaxNotSum) {
  MediatorOptions opts;
  Mediator med(opts);
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("a", "A", 50, FaultProfile{})).ok());
  ASSERT_TRUE(
      med.RegisterWrapper(MakeSource("b", "B", 50, FaultProfile{})).ok());

  auto two = algebra::Union(Submit("a", Scan("A")), Submit("b", Scan("B")));
  costmodel::EstimateOptions est_opts;
  auto serial = med.estimator().Estimate(*two, est_opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto concurrent =
      optimizer::ResponseTimeCost(*two, med.estimator(), est_opts);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  // Two concurrent submits cost max-not-sum: strictly cheaper than the
  // serial total, but never cheaper than the slowest submit alone.
  EXPECT_LT(*concurrent, serial->root.total_time());
  auto one = Submit("a", Scan("A"));
  auto single_serial = med.estimator().Estimate(*one, est_opts);
  ASSERT_TRUE(single_serial.ok());
  auto single_concurrent =
      optimizer::ResponseTimeCost(*one, med.estimator(), est_opts);
  ASSERT_TRUE(single_concurrent.ok());
  // A single submit has nothing to overlap: both objectives agree.
  EXPECT_EQ(*single_concurrent, single_serial->root.total_time());
  EXPECT_GE(*concurrent, *single_concurrent);
}

}  // namespace
}  // namespace disco
