// Optimizer: submit placement, capability handling, plan correctness
// (the chosen plan computes the same answer as a naive plan), pruning
// invariance.

#include "optimizer/optimizer.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "algebra/plan_printer.h"
#include "mediator/mediator.h"

namespace disco {
namespace optimizer {
namespace {

using mediator::Mediator;
using mediator::QueryResult;

/// Federation: two relational sources. s1 has A(10k rows, indexed) and
/// B(100 rows); s2 has C(1000 rows). Joins: A.b_id=B.id, B.c_id=C.id.
std::unique_ptr<Mediator> BuildMediator(
    optimizer::SourceCapabilities s1_caps = SourceCapabilities::All()) {
  auto med = std::make_unique<Mediator>();

  auto s1 = sources::MakeRelationalSource("s1");
  storage::Table* a = s1->CreateTable(CollectionSchema(
      "A", {{"aid", AttrType::kLong}, {"b_id", AttrType::kLong}}));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(
        a->Insert({Value(int64_t{i}), Value(int64_t{i % 100})}).ok());
  }
  EXPECT_TRUE(a->CreateIndex("aid").ok());
  storage::Table* b = s1->CreateTable(CollectionSchema(
      "B", {{"id", AttrType::kLong}, {"c_id", AttrType::kLong}}));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(
        b->Insert({Value(int64_t{i}), Value(int64_t{i % 1000})}).ok());
  }
  EXPECT_TRUE(b->CreateIndex("id").ok());
  wrapper::SimulatedWrapper::Options s1_opts;
  s1_opts.capabilities = s1_caps;
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(s1), s1_opts))
                  .ok());

  auto s2 = sources::MakeRelationalSource("s2");
  storage::Table* c = s2->CreateTable(CollectionSchema(
      "C", {{"id", AttrType::kLong}, {"tag", AttrType::kString}}));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(c->Insert({Value(int64_t{i}),
                           Value("tag" + std::to_string(i % 7))})
                    .ok());
  }
  EXPECT_TRUE(c->CreateIndex("id").ok());
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(s2),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

int CountSubmits(const algebra::Operator& op) {
  int n = op.kind == algebra::OpKind::kSubmit ? 1 : 0;
  for (const auto& c : op.children) n += CountSubmits(*c);
  return n;
}

bool ContainsKind(const algebra::Operator& op, algebra::OpKind kind,
                  const std::string& source_below = "") {
  if (op.kind == kind &&
      (source_below.empty() || op.source == source_below)) {
    return true;
  }
  for (const auto& c : op.children) {
    if (ContainsKind(*c, kind, source_below)) return true;
  }
  return false;
}

TEST(OptimizerTest, SingleRelationPushesSelection) {
  auto med = BuildMediator();
  auto plan = med->Plan("SELECT aid FROM A WHERE aid <= 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The selection executes inside the submit.
  EXPECT_EQ(CountSubmits(*plan->plan), 1);
  std::string printed = algebra::PrintPlan(*plan->plan);
  size_t submit_pos = printed.find("submit");
  size_t select_pos = printed.find("select");
  ASSERT_NE(submit_pos, std::string::npos);
  ASSERT_NE(select_pos, std::string::npos);
  EXPECT_LT(submit_pos, select_pos);
  EXPECT_GT(plan->stats.plans_costed, 0);
}

TEST(OptimizerTest, SameSourceJoinPushedDown) {
  // A highly reducing join: B filtered to 2 rows, so pushing the join
  // into s1 ships ~200 result rows instead of all 10000 A rows. Bind
  // joins are disabled to isolate the classic pushdown decision (with
  // them enabled the optimizer may probe A instead; see
  // BindJoinTest).
  auto med = BuildMediator();
  auto bound = med->Analyze(
      "SELECT aid FROM A, B WHERE A.b_id = B.id AND B.id <= 1");
  ASSERT_TRUE(bound.ok());
  costmodel::CostEstimator est(med->registry(), &med->catalog());
  Optimizer opt(&est, &med->capabilities());
  OptimizerOptions options;
  options.enable_bind_join = false;
  auto plan = opt.Optimize(*bound, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountSubmits(*plan->plan), 1);
  EXPECT_TRUE(ContainsKind(*plan->plan, algebra::OpKind::kJoin));
  // ... and the answer is right.
  auto result = med->Execute(*plan->plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples.size(), 200u);
}

TEST(OptimizerTest, CrossSourceJoinAtMediator) {
  auto med = BuildMediator();
  auto plan = med->Plan(
      "SELECT tag FROM B, C WHERE B.c_id = C.id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(CountSubmits(*plan->plan), 2);
  // The join sits above both submits.
  EXPECT_EQ(plan->plan->kind == algebra::OpKind::kJoin ||
                ContainsKind(*plan->plan, algebra::OpKind::kJoin),
            true);
}

TEST(OptimizerTest, CapabilitiesForceMediatorWork) {
  auto med = BuildMediator(SourceCapabilities::FilterOnly());
  auto plan = med->Plan(
      "SELECT aid FROM A, B WHERE A.b_id = B.id AND aid <= 100");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // s1 cannot join: two submits, mediator join.
  EXPECT_EQ(CountSubmits(*plan->plan), 2);
}

TEST(OptimizerTest, ChosenPlanComputesCorrectAnswer) {
  auto med = BuildMediator();
  auto result = med->Query(
      "SELECT aid, tag FROM A, B, C "
      "WHERE A.b_id = B.id AND B.c_id = C.id AND aid <= 199");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every A row (aid 0..199) joins exactly one B and one C.
  EXPECT_EQ(result->tuples.size(), 200u);

  // Cross-check a few rows: aid maps to b_id = aid % 100 = c_id % 1000.
  for (const storage::Tuple& t : result->tuples) {
    ASSERT_EQ(t.size(), 2u);
    int64_t aid = t[0].AsInt64();
    std::string expected_tag = "tag" + std::to_string((aid % 100) % 7);
    EXPECT_EQ(t[1].AsString(), expected_tag);
  }
}

TEST(OptimizerTest, PruningDoesNotChangeTheChosenPlan) {
  for (const char* sql :
       {"SELECT aid FROM A WHERE aid <= 10",
        "SELECT aid FROM A, B WHERE A.b_id = B.id AND aid <= 50",
        "SELECT tag FROM A, B, C WHERE A.b_id = B.id AND B.c_id = C.id"}) {
    auto med = BuildMediator();
    auto bound = med->Analyze(sql);
    ASSERT_TRUE(bound.ok());
    costmodel::CostEstimator est(med->registry(), &med->catalog());
    Optimizer opt(&est, &med->capabilities());

    OptimizerOptions with, without;
    with.use_pruning = true;
    without.use_pruning = false;
    auto p1 = opt.Optimize(*bound, with);
    auto p2 = opt.Optimize(*bound, without);
    ASSERT_TRUE(p1.ok()) << p1.status().ToString();
    ASSERT_TRUE(p2.ok());
    // Pruning is a heuristic: with non-monotone min-wins strategies an
    // intermediate subcost can exceed the bound even though the final
    // cost would not (the paper flags this as future work, §4.3.2). The
    // pruned search may therefore keep a slightly costlier plan -- but
    // never a cheaper-than-optimal one, and in practice it stays close.
    EXPECT_GE(p1->estimated_ms, p2->estimated_ms - 1e-6) << sql;
    EXPECT_LE(p1->estimated_ms, p2->estimated_ms * 1.05) << sql;
  }
}

TEST(OptimizerTest, AggregatePushedIntoSingleSourceQuery) {
  auto med = BuildMediator();
  auto plan = med->Plan("SELECT count(*) FROM A WHERE aid <= 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ContainsKind(*plan->plan, algebra::OpKind::kAggregate));
  auto result = med->Execute(*plan->plan);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tuples.size(), 1u);
  EXPECT_EQ(result->tuples[0][0], Value(int64_t{11}));
}

TEST(OptimizerTest, TooManyRelationsRejected) {
  auto med = BuildMediator();
  auto bound = med->Analyze("SELECT aid FROM A WHERE aid <= 1");
  ASSERT_TRUE(bound.ok());
  costmodel::CostEstimator est(med->registry(), &med->catalog());
  Optimizer opt(&est, &med->capabilities());
  OptimizerOptions options;
  options.max_relations = 0;
  EXPECT_TRUE(opt.Optimize(*bound, options).status().IsNotSupported());
}

TEST(OptimizerTest, OrderByAndDistinctInPlan) {
  auto med = BuildMediator();
  auto result = med->Query(
      "SELECT DISTINCT b_id FROM A WHERE aid <= 500 ORDER BY b_id");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tuples.size(), 100u);
  for (size_t i = 1; i < result->tuples.size(); ++i) {
    EXPECT_LT(result->tuples[i - 1][0].AsInt64(),
              result->tuples[i][0].AsInt64());
  }
}

}  // namespace
}  // namespace optimizer
}  // namespace disco
