// Degradation contracts end to end: a reduced chaos sweep (every
// scenario, two seeds, short query stream) must pass every contract on
// every run. The full 200-run sweep lives in bench_chaos; this test
// keeps the contracts under ctest -- and under the sanitizer jobs.

#include "chaos/chaos_harness.h"

#include <gtest/gtest.h>

namespace disco {
namespace chaos {
namespace {

ChaosOptions SmallOptions() {
  ChaosOptions options;
  options.seeds = 2;
  options.queries_per_run = 6;
  options.rows_per_source = 20;
  return options;
}

std::string Render(const ChaosRunResult& r) {
  std::string out = r.scenario + " seed " + std::to_string(r.seed);
  for (const std::string& v : r.violations) out += "\n  ! " + v;
  return out;
}

TEST(ChaosContractTest, EveryScenarioHoldsEveryContract) {
  ChaosSweepResult sweep = RunChaosSweep(SmallOptions());
  EXPECT_EQ(sweep.runs,
            static_cast<int>(AllChaosScenarios().size()) * 2);
  for (const ChaosRunResult& r : sweep.results) {
    EXPECT_TRUE(r.sound) << Render(r);
    EXPECT_TRUE(r.attributed) << Render(r);
    EXPECT_TRUE(r.breaker_ok) << Render(r);
    EXPECT_TRUE(r.no_open_calls) << Render(r);
    EXPECT_TRUE(r.pools_identical) << Render(r);
    EXPECT_TRUE(r.replay_identical) << Render(r);
    EXPECT_GT(r.oracle_tuples, 0) << Render(r);
    EXPECT_LE(r.availability, 1.0) << Render(r);
  }
  EXPECT_TRUE(sweep.all_passed());
  EXPECT_DOUBLE_EQ(sweep.soundness, 1.0);
}

TEST(ChaosContractTest, LatencyStormsSlowButNeverLose) {
  // A pure latency storm degrades time, not answers: full availability.
  ChaosRunResult r = RunChaosScenario("latency-storm", 3, SmallOptions());
  EXPECT_TRUE(r.passed()) << Render(r);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_EQ(r.missing_tuples, 0);
  EXPECT_EQ(r.queries_failed, 0);
}

TEST(ChaosContractTest, MalformedResponsesAreQuarantinedAndWarned) {
  ChaosRunResult r = RunChaosScenario("malformed-types", 1, SmallOptions());
  EXPECT_TRUE(r.passed()) << Render(r);
  // The liar really lied, the guard really caught it, and the loss was
  // warned about -- otherwise this scenario tests nothing.
  EXPECT_GT(r.quarantined_rows, 0);
  EXPECT_GT(r.warning_count, 0);
  EXPECT_GT(r.missing_tuples, 0);
  EXPECT_LT(r.availability, 1.0);
}

TEST(ChaosContractTest, RunsAreDeterministicAcrossInvocations) {
  // Same (scenario, seed, options) twice: identical scores, not just
  // internally-consistent arms.
  ChaosRunResult a = RunChaosScenario("mixed", 2, SmallOptions());
  ChaosRunResult b = RunChaosScenario("mixed", 2, SmallOptions());
  EXPECT_TRUE(a.passed()) << Render(a);
  EXPECT_EQ(a.returned_tuples, b.returned_tuples);
  EXPECT_EQ(a.missing_tuples, b.missing_tuples);
  EXPECT_EQ(a.quarantined_rows, b.quarantined_rows);
  EXPECT_EQ(a.warning_count, b.warning_count);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
}

TEST(ChaosContractTest, UnknownScenarioFailsLoudly) {
  ChaosRunResult r = RunChaosScenario("does-not-exist", 1, SmallOptions());
  EXPECT_FALSE(r.passed());
  ASSERT_FALSE(r.violations.empty());
}

TEST(ChaosContractTest, SweepJsonCarriesTheGateMetrics) {
  ChaosOptions options = SmallOptions();
  options.seeds = 1;
  options.scenarios = {"outage-domain"};
  ChaosSweepResult sweep = RunChaosSweep(options);
  ASSERT_EQ(sweep.runs, 1);
  const std::string json = sweep.ToJson();
  EXPECT_NE(json.find("\"soundness\":1.0000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"availability\":"), std::string::npos);
  EXPECT_NE(json.find("\"outage-domain\""), std::string::npos);
}

}  // namespace
}  // namespace chaos
}  // namespace disco
