#include "costlang/vm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "costlang/builtin_functions.h"
#include "costlang/compiler.h"

namespace disco {
namespace costlang {
namespace {

/// Canned context: one input with fixed stats, a select predicate on
/// "id" with selectivity 0.25, binding slot values supplied by tests.
class TestContext : public EvalContext {
 public:
  Result<double> InputVar(int input, CostVarId var) override {
    EXPECT_EQ(input, 0);
    switch (var) {
      case CostVarId::kCountObject: return 1000.0;
      case CostVarId::kObjectSize: return 50.0;
      case CostVarId::kTotalSize: return 50000.0;
      case CostVarId::kTimeFirst: return 10.0;
      case CostVarId::kTimeNext: return 1.0;
      case CostVarId::kTotalTime: return 500.0;
    }
    return 0.0;
  }
  Result<Value> InputAttrStat(int, const std::string& attr,
                              AttrStatId stat) override {
    last_attr = attr;
    switch (stat) {
      case AttrStatId::kIndexed: return Value(1.0);
      case AttrStatId::kClustered: return Value(0.0);
      case AttrStatId::kCountDistinct: return Value(100.0);
      case AttrStatId::kMin: return Value(int64_t{0});
      case AttrStatId::kMax: return Value(int64_t{999});
    }
    return Value();
  }
  Result<double> SelfVar(CostVarId var) override {
    if (var == CostVarId::kCountObject) return 250.0;
    return Status::ExecutionError("self var not computed");
  }
  Result<Value> Binding(int slot) override {
    if (slot < static_cast<int>(bindings.size())) return bindings[slot];
    return Status::Internal("no binding");
  }
  Result<std::string> ImpliedAttribute() override {
    return std::string("id");
  }
  Result<double> Selectivity(int, const std::optional<std::string>& attr,
                             const std::optional<Value>&) override {
    last_selectivity_attr = attr;
    return 0.25;
  }

  std::vector<Value> bindings;
  std::string last_attr;
  std::optional<std::string> last_selectivity_attr;
};

/// Compiles a one-formula scan rule `scan(C) { TotalTime = <expr>; }`
/// and evaluates it against TestContext.
Result<double> EvalScanExpr(const std::string& expr, TestContext* ctx) {
  DISCO_ASSIGN_OR_RETURN(
      CompiledRuleSet rules,
      CompileRuleText("scan(C) { TotalTime = " + expr + "; }",
                      CompileSchema()));
  return Execute(rules.rules[0].formulas[0].program, ctx, {},
                 rules.global_values);
}

struct ExprCase {
  const char* expr;
  double expected;
};

class VmExprTest : public ::testing::TestWithParam<ExprCase> {};

TEST_P(VmExprTest, Evaluates) {
  TestContext ctx;
  Result<double> r = EvalScanExpr(GetParam().expr, &ctx);
  ASSERT_TRUE(r.ok()) << GetParam().expr << ": " << r.status().ToString();
  EXPECT_NEAR(*r, GetParam().expected, 1e-9) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, VmExprTest,
    ::testing::Values(
        ExprCase{"1 + 2 * 3", 7}, ExprCase{"(1 + 2) * 3", 9},
        ExprCase{"10 / 4", 2.5}, ExprCase{"-3 + 5", 2},
        ExprCase{"2 - -2", 4}, ExprCase{"1e3 / 10", 100}));

INSTANTIATE_TEST_SUITE_P(
    Builtins, VmExprTest,
    ::testing::Values(
        ExprCase{"exp(0)", 1}, ExprCase{"ln(exp(2))", 2},
        ExprCase{"log(exp(3))", 3},  // alias
        ExprCase{"log2(8)", 3}, ExprCase{"log10(1000)", 3},
        ExprCase{"sqrt(49)", 7}, ExprCase{"pow(2, 10)", 1024},
        ExprCase{"ceil(1.2)", 2}, ExprCase{"floor(1.8)", 1},
        ExprCase{"abs(-4)", 4}, ExprCase{"min(3, 1, 2)", 1},
        ExprCase{"max(3, 1, 2)", 3}, ExprCase{"if(1, 10, 20)", 10},
        ExprCase{"if(0, 10, 20)", 20}, ExprCase{"lt(1, 2)", 1},
        ExprCase{"ge(2, 2)", 1}, ExprCase{"eq(1, 2)", 0},
        ExprCase{"ne(1, 2)", 1}, ExprCase{"and(1, 1, 0)", 0},
        ExprCase{"or(0, 0, 1)", 1}, ExprCase{"not(0)", 1},
        ExprCase{"clamp(5, 0, 3)", 3}));

INSTANTIATE_TEST_SUITE_P(
    ContextAccess, VmExprTest,
    ::testing::Values(
        ExprCase{"C.CountObject", 1000},
        ExprCase{"C.TotalTime + C.TimeFirst", 510},
        ExprCase{"C.id.CountDistinct", 100},
        ExprCase{"C.id.Max - C.id.Min", 999},
        ExprCase{"selectivity()", 0.25},
        ExprCase{"CountObject", 250}));  // self variable

TEST(VmTest, YaoBuiltinMatchesFormula) {
  TestContext ctx;
  Result<double> r = EvalScanExpr("yao(0.1, 70000, 1000)", &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1 - std::exp(-0.1 * 70), 1e-12);
  EXPECT_DOUBLE_EQ(YaoFraction(0, 70000, 1000), 0.0);
  EXPECT_NEAR(YaoFraction(1.0, 70000, 1000), 1.0, 1e-9);
  // Degenerate page count saturates.
  EXPECT_DOUBLE_EQ(YaoFraction(0.5, 100, 0), 1.0);
}

TEST(VmTest, DivisionByZeroIsExecutionError) {
  TestContext ctx;
  Result<double> r = EvalScanExpr("1 / 0", &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsExecutionError());
}

TEST(VmTest, DomainErrorsSurface) {
  TestContext ctx;
  EXPECT_FALSE(EvalScanExpr("ln(0)", &ctx).ok());
  EXPECT_FALSE(EvalScanExpr("sqrt(-1)", &ctx).ok());
  EXPECT_FALSE(EvalScanExpr("clamp(1, 5, 0)", &ctx).ok());
}

TEST(VmTest, StringArithmeticIsExecutionError) {
  TestContext ctx;
  Result<double> r = EvalScanExpr("C.id.Min + 'abc'", &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsExecutionError());
}

TEST(VmTest, SelectivityWithExplicitAttr) {
  CompileSchema schema;
  schema.AddCollection("T", {"id"});
  auto rules = CompileRuleText(
      "select(C, id = V) { TotalTime = selectivity(id, V); }", schema);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  TestContext ctx;
  ctx.bindings = {Value("T"), Value(int64_t{7})};  // C, V
  Result<double> r = Execute(rules->rules[0].formulas[0].program, &ctx, {},
                             rules->global_values);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(*r, 0.25);
  ASSERT_TRUE(ctx.last_selectivity_attr.has_value());
  EXPECT_EQ(*ctx.last_selectivity_attr, "id");
}

TEST(VmTest, BindingValueFlowsIntoArithmetic) {
  CompileSchema schema;
  schema.AddCollection("T", {"id"});
  auto rules = CompileRuleText(
      "select(C, id <= V) { TotalTime = V * 2; }", schema);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  TestContext ctx;
  ctx.bindings = {Value("T"), Value(int64_t{21})};
  Result<double> r = Execute(rules->rules[0].formulas[0].program, &ctx, {},
                             rules->global_values);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 42);
}

TEST(VmTest, LocalsAndGlobalsResolve) {
  auto rules = CompileRuleText(
      "define G = 100;\n"
      "scan(C) {\n"
      "  L = G + 5;\n"
      "  TotalTime = L * 2;\n"
      "}",
      CompileSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  TestContext ctx;
  const CompiledRule& rule = rules->rules[0];
  std::vector<Value> locals;
  Result<double> lv = Execute(rule.locals[0].program, &ctx, locals,
                              rules->global_values);
  ASSERT_TRUE(lv.ok());
  EXPECT_DOUBLE_EQ(*lv, 105);
  locals.push_back(Value(*lv));
  Result<double> r = Execute(rule.formulas[0].program, &ctx, locals,
                             rules->global_values);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 210);
}

TEST(VmTest, DisassembleProducesOneLinePerInstr) {
  auto rules = CompileRuleText("scan(C) { TotalTime = 1 + C.CountObject; }",
                               CompileSchema());
  ASSERT_TRUE(rules.ok());
  std::string dis = rules->rules[0].formulas[0].program.Disassemble();
  // push, load, add, ret -> 4 lines.
  EXPECT_EQ(std::count(dis.begin(), dis.end(), '\n'), 4);
}

}  // namespace
}  // namespace costlang
}  // namespace disco
