#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace disco {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ExecutionError("x").IsExecutionError());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, UnavailableRendersAndChains) {
  Status s = Status::Unavailable("connection lost")
                 .WithContext("source 'faulty'");
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.ToString(), "Unavailable: source 'faulty': connection lost");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("abc").ToString(), "NotFound: abc");
  EXPECT_EQ(Status::ParseError("bad").ToString(), "ParseError: bad");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status original = Status::OutOfRange("boom");
  Status copy = original;
  EXPECT_TRUE(copy.IsOutOfRange());
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_TRUE(original.IsOutOfRange());  // copy did not steal

  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsOutOfRange());

  Status assigned;
  assigned = copy;
  EXPECT_TRUE(assigned.IsOutOfRange());
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::NotFound("attr 'x'").WithContext("binding query");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "binding query: attr 'x'");
  EXPECT_TRUE(Status::OK().WithContext("nothing").ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DISCO_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsNotFound());

  auto succeeds = []() -> Status {
    DISCO_RETURN_NOT_OK(Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(succeeds().ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnExtracts) {
  auto f = [](bool fail) -> Result<int> {
    auto inner = [&]() -> Result<int> {
      if (fail) return Status::OutOfRange("bad");
      return 7;
    };
    DISCO_ASSIGN_OR_RETURN(int v, inner());
    return v * 2;
  };
  ASSERT_TRUE(f(false).ok());
  EXPECT_EQ(*f(false), 14);
  EXPECT_TRUE(f(true).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).MoveValueUnsafe();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace disco
