#include "costmodel/history.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/operator.h"

namespace disco {
namespace costmodel {
namespace {

TEST(HistoryTest, FactorDefaultsToOne) {
  HistoryManager history;
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("src", algebra::OpKind::kScan),
                   1.0);
  EXPECT_EQ(history.num_observations(), 0);
}

TEST(HistoryTest, FirstObservationSetsFactor) {
  HistoryManager history;
  RuleRegistry registry;
  auto plan = algebra::Scan("T");
  history.RecordExecution(&registry, "src", *plan, 100,
                          CostVector::Full(1, 1, 1, 1, 1, 300));
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("src", algebra::OpKind::kScan),
                   3.0);
  EXPECT_EQ(history.num_observations(), 1);
  // The query-scope entry was installed too.
  EXPECT_NE(registry.QueryCost("src", *plan), nullptr);
}

TEST(HistoryTest, EwmaConverges) {
  HistoryManager history(/*alpha=*/0.5);
  RuleRegistry registry;
  auto plan = algebra::Scan("T");
  // Estimates are consistently half the observed cost (ratio 2).
  for (int i = 0; i < 12; ++i) {
    history.RecordExecution(&registry, "src", *plan, 100,
                            CostVector::Full(1, 1, 1, 1, 1, 200));
  }
  EXPECT_NEAR(history.AdjustmentFactor("src", algebra::OpKind::kScan), 2.0,
              0.01);
}

TEST(HistoryTest, FactorsAreKeyedBySourceAndKind) {
  HistoryManager history;
  RuleRegistry registry;
  auto scan = algebra::Scan("T");
  auto select = algebra::Select(algebra::Scan("T"), "a",
                                algebra::CmpOp::kEq, Value(int64_t{1}));
  history.RecordExecution(&registry, "a", *scan, 100,
                          CostVector::Full(1, 1, 1, 1, 1, 500));
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("a", algebra::OpKind::kScan), 5);
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("b", algebra::OpKind::kScan), 1);
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("a", algebra::OpKind::kSelect),
                   1);
  history.RecordExecution(&registry, "a", *select, 100,
                          CostVector::Full(1, 1, 1, 1, 1, 50));
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("a", algebra::OpKind::kSelect),
                   0.5);
}

TEST(HistoryTest, EwmaReconvergesUnderSustainedDrift) {
  // The full correction loop the mediator runs: the estimator applies
  // the learned factor on top of the raw model, the source's true cost
  // shifts 8x, and sustained feedback drives the *corrected* estimate's
  // q-error back toward 1 at the EWMA rate.
  HistoryManager history(/*alpha=*/0.3);
  RuleRegistry registry;
  auto plan = algebra::Scan("T");
  const double model_ms = 100;  // raw (uncorrected) model estimate
  double true_ms = 100;
  auto observe = [&]() -> double {
    const double corrected =
        model_ms * history.AdjustmentFactor("src", algebra::OpKind::kScan);
    // RecordExecution receives the raw estimate, as the mediator feeds
    // it (use_history = false), so the factor tracks true/model.
    history.RecordExecution(&registry, "src", *plan, model_ms,
                            CostVector::Full(1, 1, 1, 1, 1, true_ms));
    return std::max(corrected / true_ms, true_ms / corrected);  // q-error
  };
  for (int i = 0; i < 5; ++i) observe();
  EXPECT_NEAR(history.AdjustmentFactor("src", algebra::OpKind::kScan), 1.0,
              0.01);

  true_ms = 800;  // sustained drift: the source is now 8x slower
  const double q_at_shift = observe();
  EXPECT_GT(q_at_shift, 7.5);  // the stale correction is caught out
  double q = q_at_shift;
  for (int i = 0; i < 14; ++i) {
    const double q_next = observe();
    EXPECT_LT(q_next, q + 1e-9) << "q-error must fall monotonically";
    q = q_next;
  }
  // (1 - alpha)^15 ~ 0.005: the factor has all but converged to 8 and
  // corrected estimates are within a few percent of reality.
  EXPECT_LT(q, 1.05);
  EXPECT_NEAR(history.AdjustmentFactor("src", algebra::OpKind::kScan), 8.0,
              0.3);
}

TEST(HistoryTest, SourceNamesCaseInsensitive) {
  HistoryManager history;
  RuleRegistry registry;
  auto plan = algebra::Scan("T");
  history.RecordExecution(&registry, "SRC", *plan, 100,
                          CostVector::Full(1, 1, 1, 1, 1, 200));
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("src", algebra::OpKind::kScan),
                   2.0);
}

TEST(HistoryTest, DegenerateObservationsIgnoredOrClamped) {
  HistoryManager history;
  RuleRegistry registry;
  auto plan = algebra::Scan("T");
  // Zero estimate: no factor update (cannot form a ratio).
  history.RecordExecution(&registry, "src", *plan, 0,
                          CostVector::Full(1, 1, 1, 1, 1, 200));
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("src", algebra::OpKind::kScan),
                   1.0);
  // Absurd ratio clamps rather than exploding.
  history.RecordExecution(&registry, "src", *plan, 1e-9,
                          CostVector::Full(1, 1, 1, 1, 1, 1e9));
  EXPECT_LE(history.AdjustmentFactor("src", algebra::OpKind::kScan), 1000.0);
}

}  // namespace
}  // namespace costmodel
}  // namespace disco
