#include "query/sql_parser.h"

#include <gtest/gtest.h>

namespace disco {
namespace query {
namespace {

TEST(SqlParserTest, SelectStar) {
  auto q = ParseSql("SELECT * FROM Employee");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->select_all);
  EXPECT_EQ(q->tables, (std::vector<std::string>{"Employee"}));
}

TEST(SqlParserTest, SelectItemsAndPredicates) {
  auto q = ParseSql(
      "SELECT name, salary FROM Employee "
      "WHERE salary > 100 AND name = 'Smith'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->items.size(), 2u);
  EXPECT_EQ(q->items[0].attribute, "name");
  ASSERT_EQ(q->selections.size(), 2u);
  EXPECT_EQ(q->selections[0].attribute, "salary");
  EXPECT_EQ(q->selections[0].op, algebra::CmpOp::kGt);
  EXPECT_EQ(q->selections[0].value, Value(int64_t{100}));
  EXPECT_EQ(q->selections[1].value, Value("Smith"));
  EXPECT_TRUE(q->joins.empty());
}

TEST(SqlParserTest, JoinPredicates) {
  auto q = ParseSql(
      "SELECT * FROM A, B WHERE A.x = B.y AND A.z >= 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left_attribute, "A.x");
  EXPECT_EQ(q->joins[0].right_attribute, "B.y");
  ASSERT_EQ(q->selections.size(), 1u);
  EXPECT_EQ(q->selections[0].attribute, "A.z");
}

TEST(SqlParserTest, Aggregates) {
  auto q = ParseSql("SELECT count(*) FROM T");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].agg, algebra::AggFunc::kCount);
  EXPECT_TRUE(q->items[0].attribute.empty());

  q = ParseSql("SELECT dept, avg(salary) FROM T GROUP BY dept");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->items[1].agg, algebra::AggFunc::kAvg);
  EXPECT_EQ(q->items[1].attribute, "salary");
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"dept"}));
}

TEST(SqlParserTest, AggregateNamesMayBeAttributeNames) {
  // `min` without parentheses is a plain attribute.
  auto q = ParseSql("SELECT min FROM T WHERE min > 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->items[0].agg.has_value());
  EXPECT_EQ(q->items[0].attribute, "min");
}

TEST(SqlParserTest, OrderByAndDistinct) {
  auto q = ParseSql("SELECT DISTINCT a FROM T ORDER BY a DESC");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->order_by, "a");
  EXPECT_FALSE(q->order_ascending);

  q = ParseSql("SELECT a FROM T ORDER BY a ASC");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->order_ascending);
}

TEST(SqlParserTest, LiteralKinds) {
  auto q = ParseSql(
      "SELECT * FROM T WHERE a = 3 AND b = 3.5 AND c = -2 AND d = true "
      "AND e = 'txt'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->selections.size(), 5u);
  EXPECT_EQ(q->selections[0].value, Value(int64_t{3}));
  EXPECT_EQ(q->selections[1].value, Value(3.5));
  EXPECT_EQ(q->selections[2].value, Value(int64_t{-2}));
  EXPECT_EQ(q->selections[3].value, Value(true));
  EXPECT_EQ(q->selections[4].value, Value("txt"));
}

TEST(SqlParserTest, KeywordsCaseInsensitive) {
  auto q = ParseSql("select a from T where a < 5 order by a");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->selections.size(), 1u);
}

TEST(SqlParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSql("SELECT * FROM T;").ok());
}

TEST(SqlParserTest, Errors) {
  EXPECT_TRUE(ParseSql("SELEC * FROM T").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT FROM T").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT * T").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT * FROM T WHERE").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT * FROM T WHERE a").status().IsParseError());
  EXPECT_TRUE(
      ParseSql("SELECT * FROM T WHERE a < b").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT * FROM T extra").status().IsParseError());
  EXPECT_TRUE(ParseSql("SELECT sum(*) FROM T").status().IsParseError());
}

TEST(SqlParserTest, ToStringRoundTripsShape) {
  auto q = ParseSql(
      "SELECT a, count(b) FROM T, U "
      "WHERE T.x = U.y AND a >= 5 GROUP BY a ORDER BY a");
  ASSERT_TRUE(q.ok());
  std::string s = q->ToString();
  EXPECT_NE(s.find("count(b)"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY a"), std::string::npos);
  EXPECT_NE(s.find("T.x = U.y"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace disco
