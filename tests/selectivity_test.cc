#include "costmodel/selectivity.h"

#include <gtest/gtest.h>

namespace disco {
namespace costmodel {
namespace {

using algebra::CmpOp;

AttributeStats UniformStats() {
  AttributeStats s;
  s.count_distinct = 100;
  s.min = Value(int64_t{0});
  s.max = Value(int64_t{999});
  return s;
}

TEST(SelectivityTest, EqualityUsesCountDistinct) {
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(UniformStats(), CmpOp::kEq, Value(int64_t{500})),
      0.01);
}

TEST(SelectivityTest, EqualityOutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(UniformStats(), CmpOp::kEq, Value(int64_t{5000})),
      0.0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(UniformStats(), CmpOp::kEq, Value(int64_t{-1})),
      0.0);
}

TEST(SelectivityTest, NotEqualComplements) {
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(UniformStats(), CmpOp::kNe, Value(int64_t{5})),
      0.99);
}

TEST(SelectivityTest, RangeInterpolates) {
  AttributeStats s = UniformStats();
  EXPECT_NEAR(EstimateSelectivity(s, CmpOp::kLt, Value(int64_t{500})),
              500.0 / 999.0, 1e-9);
  EXPECT_NEAR(EstimateSelectivity(s, CmpOp::kGe, Value(int64_t{500})),
              1.0 - 500.0 / 999.0, 1e-9);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(s, CmpOp::kLt, Value(int64_t{-5})), 0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(s, CmpOp::kGt, Value(int64_t{2000})),
                   0);
}

TEST(SelectivityTest, MissingStatsFallBackToDefaults) {
  AttributeStats empty;
  EXPECT_DOUBLE_EQ(EstimateSelectivity(empty, CmpOp::kEq, Value(int64_t{1})),
                   DefaultSelectivity(CmpOp::kEq));
  EXPECT_DOUBLE_EQ(EstimateSelectivity(empty, CmpOp::kLt, Value(int64_t{1})),
                   DefaultSelectivity(CmpOp::kLt));
}

TEST(SelectivityTest, StringRangeFallsBackToDefault) {
  AttributeStats s;
  s.count_distinct = 10;
  s.min = Value("aaa");
  s.max = Value("zzz");
  EXPECT_DOUBLE_EQ(EstimateSelectivity(s, CmpOp::kLt, Value("mmm")),
                   DefaultSelectivity(CmpOp::kLt));
  // Equality still works through CountDistinct.
  EXPECT_DOUBLE_EQ(EstimateSelectivity(s, CmpOp::kEq, Value("mmm")), 0.1);
}

TEST(SelectivityTest, HistogramPreferredWhenPresent) {
  AttributeStats s = UniformStats();
  // Histogram says everything is the value 7.
  std::vector<Value> vals(100, Value(int64_t{7}));
  auto h = EquiDepthHistogram::Build(std::move(vals), 4);
  ASSERT_TRUE(h.ok());
  s.histogram = std::move(*h);
  EXPECT_NEAR(EstimateSelectivity(s, CmpOp::kEq, Value(int64_t{7})), 1.0,
              1e-9);
  EXPECT_NEAR(EstimateSelectivity(s, CmpOp::kEq, Value(int64_t{8})), 0.0,
              1e-9);
  EXPECT_NEAR(EstimateSelectivity(s, CmpOp::kLe, Value(int64_t{7})), 1.0,
              1e-9);
  EXPECT_NEAR(EstimateSelectivity(s, CmpOp::kGt, Value(int64_t{7})), 0.0,
              1e-9);
}

TEST(SelectivityTest, DefaultsAreSane) {
  EXPECT_GT(DefaultSelectivity(CmpOp::kEq), 0);
  EXPECT_LT(DefaultSelectivity(CmpOp::kEq), 1);
  EXPECT_NEAR(DefaultSelectivity(CmpOp::kNe) + DefaultSelectivity(CmpOp::kEq),
              1.0, 1e-9);
}

TEST(SelectivityTest, JoinSelectivityPaperFormula) {
  // 1 / Min(CountDistinct(A), CountDistinct(B)) -- Section 2.3.
  EXPECT_DOUBLE_EQ(JoinSelectivity(100, 50), 1.0 / 50);
  EXPECT_DOUBLE_EQ(JoinSelectivity(10, 1000), 1.0 / 10);
  EXPECT_DOUBLE_EQ(JoinSelectivity(0, 10), 0.1);  // unknown -> default
}

class SelectivityRangeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SelectivityRangeSweep, AlwaysAProbability) {
  auto [op_i, value] = GetParam();
  CmpOp op = static_cast<CmpOp>(op_i);
  double sel =
      EstimateSelectivity(UniformStats(), op, Value(int64_t{value}));
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndValues, SelectivityRangeSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(-100, 0, 1, 500, 999, 10000)));

}  // namespace
}  // namespace costmodel
}  // namespace disco
