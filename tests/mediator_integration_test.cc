// End-to-end tests: registration phase + query phase across simulated
// heterogeneous sources, including the OO7 database.

#include <gtest/gtest.h>

#include <memory>

#include "bench007/oo7.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

using mediator::Mediator;
using mediator::QueryResult;

bench007::OO7Config SmallOO7() {
  bench007::OO7Config config;
  config.num_atomic_parts = 7000;
  config.connections_per_atomic = 1;
  config.num_composite_parts = 350;
  config.num_documents = 350;
  return config;
}

class MediatorIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    med_ = std::make_unique<Mediator>();

    // OO7 object database exporting the Yao rule (full cost info).
    auto oo7 = bench007::BuildOO7Source(SmallOO7());
    ASSERT_TRUE(oo7.ok()) << oo7.status().ToString();
    wrapper::SimulatedWrapper::Options oo7_opts;
    oo7_opts.cost_rules = bench007::Oo7YaoRuleText();
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(*oo7), oo7_opts))
                    .ok());

    // A relational source holding suppliers (partial cost info: none).
    auto rel = sources::MakeRelationalSource("erp");
    storage::Table* suppliers = rel->CreateTable(CollectionSchema(
        "Supplier", {{"sid", AttrType::kLong},
                     {"partType", AttrType::kString},
                     {"region", AttrType::kString}}));
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(suppliers
                      ->Insert({Value(int64_t{i}),
                                Value(std::string("t") +
                                      std::to_string(i % 10)),
                                Value(std::string(i % 2 ? "east" : "west"))})
                      .ok());
    }
    ASSERT_TRUE(suppliers->CreateIndex("sid").ok());
    wrapper::SimulatedWrapper::Options rel_opts;
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(rel), rel_opts))
                    .ok());

    // A file source (scan-only capabilities, no statistics beyond extent).
    auto file = sources::MakeFileSource("weblog");
    storage::Table* hits = file->CreateTable(CollectionSchema(
        "Hit", {{"docId", AttrType::kLong}, {"count", AttrType::kLong}}));
    for (int i = 0; i < 350; ++i) {
      ASSERT_TRUE(
          hits->Insert({Value(int64_t{i % 350}), Value(int64_t{i * 3})})
              .ok());
    }
    wrapper::SimulatedWrapper::Options file_opts;
    file_opts.capabilities = optimizer::SourceCapabilities::FilterOnly();
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(file), file_opts))
                    .ok());
  }

  std::unique_ptr<Mediator> med_;
};

TEST_F(MediatorIntegrationTest, RegistrationPopulatesCatalog) {
  EXPECT_TRUE(med_->catalog().HasSource("oo7"));
  EXPECT_TRUE(med_->catalog().HasSource("erp"));
  EXPECT_TRUE(med_->catalog().HasSource("weblog"));
  EXPECT_TRUE(med_->catalog().HasCollection("AtomicPart"));
  EXPECT_TRUE(med_->catalog().HasCollection("Supplier"));
  EXPECT_TRUE(med_->catalog().HasCollection("Hit"));

  auto entry = med_->catalog().Collection("AtomicPart");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->stats.extent.count_object, 7000);
  auto id_stats = entry->stats.Attribute("id");
  ASSERT_TRUE(id_stats.ok());
  EXPECT_TRUE(id_stats->indexed);
  EXPECT_EQ(id_stats->count_distinct, 7000);
}

TEST_F(MediatorIntegrationTest, SingleSourceSelection) {
  auto r = med_->Query("SELECT id, x FROM AtomicPart WHERE id <= 99");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 100u);
  EXPECT_GT(r->measured_ms, 0);
  EXPECT_GT(r->estimated_ms, 0);
}

TEST_F(MediatorIntegrationTest, CrossSourceJoin) {
  auto r = med_->Query(
      "SELECT id, sid FROM AtomicPart, Supplier "
      "WHERE AtomicPart.type = Supplier.partType AND id <= 20 "
      "AND region = 'east'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Every atomic part matches ~10 east suppliers of its type.
  EXPECT_GT(r->tuples.size(), 0u);
  // The plan must contain submits to both sources.
  EXPECT_NE(r->plan_text.find("@oo7"), std::string::npos);
  EXPECT_NE(r->plan_text.find("@erp"), std::string::npos);
}

TEST_F(MediatorIntegrationTest, FileSourceSelectionsStayLocal) {
  // The weblog wrapper can filter; a join involving it must happen at
  // the mediator (FilterOnly capabilities).
  auto r = med_->Query(
      "SELECT title, count FROM Document, Hit "
      "WHERE Document.id = Hit.docId AND count > 100");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->tuples.size(), 0u);
  EXPECT_NE(r->plan_text.find("@weblog"), std::string::npos);
}

TEST_F(MediatorIntegrationTest, AggregateQuery) {
  auto r = med_->Query("SELECT count(*) FROM AtomicPart WHERE id <= 699");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 1u);
  EXPECT_EQ(r->tuples[0][0], Value(int64_t{700}));
}

TEST_F(MediatorIntegrationTest, GroupByQuery) {
  auto r = med_->Query(
      "SELECT region, count(*) FROM Supplier GROUP BY region");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 2u);
}

TEST_F(MediatorIntegrationTest, OrderByQuery) {
  auto r = med_->Query(
      "SELECT id FROM AtomicPart WHERE id <= 9 ORDER BY id DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->tuples.size(), 10u);
  EXPECT_EQ(r->tuples.front()[0], Value(int64_t{9}));
  EXPECT_EQ(r->tuples.back()[0], Value(int64_t{0}));
}

TEST_F(MediatorIntegrationTest, HistoryImprovesRepeatedQueries) {
  const char* sql = "SELECT id FROM AtomicPart WHERE id <= 499";
  auto first = med_->Query(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The measured subquery cost is now a query-scope rule; a repeated
  // identical query estimates to (nearly) the measured cost.
  auto second = med_->Query(sql);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(med_->registry()->num_query_entries(), 0);
}

TEST_F(MediatorIntegrationTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(med_->Query("SELECT nothing FROM Nowhere").status().IsNotFound());
  EXPECT_TRUE(med_->Query("SELEC id FROM AtomicPart").status().IsParseError());
  EXPECT_TRUE(med_->Query("SELECT id FROM AtomicPart, Supplier")
                  .status()
                  .IsNotSupported());  // cross product
}

}  // namespace
}  // namespace disco
