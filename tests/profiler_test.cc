// Operator-level execution profiling (docs/OBSERVABILITY.md): per-node
// CPU/wait attribution on the simulated clock, the accounting identity
// against the query's measured time, byte-identical profiles across
// federation pool sizes, the folded-stack / waterfall / OpenMetrics
// exports, and the MonitorReport profiling panels.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

using algebra::Scan;
using algebra::Submit;
using mediator::FederationOptions;
using mediator::Mediator;
using mediator::MediatorOptions;
using mediator::PlanProfile;
using mediator::RetryPolicy;
using wrapper::FaultInjectingWrapper;
using wrapper::FaultProfile;

std::unique_ptr<FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<FaultInjectingWrapper>(std::move(inner), profile);
}

/// Four-way union over sources a..d; `a` is flaky (recovers on attempt
/// 3) so retry backoff shows up as wait time.
std::unique_ptr<algebra::Operator> FourWayUnion() {
  return algebra::Union(
      algebra::Union(Submit("a", Scan("A")), Submit("b", Scan("B"))),
      algebra::Union(Submit("c", Scan("C")), Submit("d", Scan("D"))));
}

std::unique_ptr<Mediator> MakeFourSourceMediator(
    const FederationOptions& fed) {
  MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = RetryPolicy::Standard(3);
  opts.fault_tolerance.federation = fed;
  auto medp = std::make_unique<Mediator>(opts);
  Mediator& med = *medp;
  EXPECT_TRUE(
      med.RegisterWrapper(
             MakeSource("a", "A", 10,
                        FaultProfile::Flaky(0.3, 18).WithLatency(100)))
          .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("b", "B", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("c", "C", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  EXPECT_TRUE(med.RegisterWrapper(
                     MakeSource("d", "D", 10, FaultProfile{}.WithLatency(100)))
                  .ok());
  return medp;
}

struct ProfileSnapshot {
  bool ok = false;
  double measured_ms = 0;
  std::shared_ptr<const PlanProfile> profile;
  std::string folded;
  std::string waterfall;
};

ProfileSnapshot RunFourSource(const FederationOptions& fed) {
  std::unique_ptr<Mediator> med = MakeFourSourceMediator(fed);
  auto plan = FourWayUnion();
  auto r = med->Execute(*plan);
  ProfileSnapshot snap;
  snap.ok = r.ok();
  if (!r.ok()) return snap;
  snap.measured_ms = r->measured_ms;
  snap.profile = r->profile;
  if (r->profile != nullptr) {
    snap.folded = r->profile->ToFolded();
    snap.waterfall = r->profile->WaterfallText();
  }
  return snap;
}

/// A one-source mediator for the SQL-level surfaces.
std::unique_ptr<Mediator> MakeSimpleMediator(MediatorOptions opts = {}) {
  auto medp = std::make_unique<Mediator>(opts);
  EXPECT_TRUE(
      medp->RegisterWrapper(MakeSource("src", "T", 40, FaultProfile{})).ok());
  return medp;
}

// --- The acceptance bar: same seed => byte-identical profile, folded
// dump, and waterfall at federation pool sizes 0 / 1 / 4. ---
TEST(ProfilerTest, ByteIdenticalAcrossPoolSizes) {
  ProfileSnapshot base;
  for (int threads : {0, 1, 4}) {
    FederationOptions fed;
    fed.threads = threads;
    fed.deadline_ms = 1e9;  // never expires; keeps the scatter path on
    ProfileSnapshot snap = RunFourSource(fed);
    ASSERT_TRUE(snap.ok) << "threads=" << threads;
    ASSERT_NE(snap.profile, nullptr) << "threads=" << threads;
    ASSERT_FALSE(snap.folded.empty());
    if (threads == 0) {
      base = std::move(snap);
      continue;
    }
    EXPECT_EQ(snap.measured_ms, base.measured_ms) << "threads=" << threads;
    EXPECT_EQ(snap.folded, base.folded) << "threads=" << threads;
    EXPECT_EQ(snap.waterfall, base.waterfall) << "threads=" << threads;
  }
}

// Per-node CPU + wait reconstructs the query's measured time under the
// scatter max-not-sum accounting:
//   measured == scatter_charged + sum(self cpu)
//             + sum(self wait over non-concurrent nodes)
TEST(ProfilerTest, CpuPlusWaitSumsToMeasured) {
  for (int threads : {0, 4}) {
    FederationOptions fed;
    fed.threads = threads;
    if (threads > 0) fed.deadline_ms = 1e9;
    ProfileSnapshot snap = RunFourSource(fed);
    ASSERT_TRUE(snap.ok);
    ASSERT_NE(snap.profile, nullptr);
    const PlanProfile& p = *snap.profile;
    EXPECT_EQ(p.measured_ms, snap.measured_ms);
    EXPECT_NEAR(p.measured_ms,
                p.scatter_charged_ms + p.total_cpu_ms() + p.total_wait_ms(),
                1e-6)
        << "threads=" << threads;
    if (threads == 0) {
      EXPECT_EQ(p.scatter_charged_ms, 0.0);
    } else {
      // The scatter phase charged the concurrent lanes max-not-sum, and
      // flagged the overlapped submits.
      EXPECT_GT(p.scatter_charged_ms, 0.0);
      int concurrent = 0;
      for (const auto& n : p.nodes) concurrent += n.concurrent ? 1 : 0;
      EXPECT_EQ(concurrent, 4);
    }
  }
}

TEST(ProfilerTest, FoldedStacksHaveLeafFramesAndPositiveValues) {
  ProfileSnapshot snap = RunFourSource(FederationOptions{});
  ASSERT_TRUE(snap.ok);
  ASSERT_FALSE(snap.folded.empty());
  std::istringstream lines(snap.folded);
  std::string line;
  bool saw_wait = false;
  while (std::getline(lines, line)) {
    // "frame;frame;[cpu] 1234" -- a stack, a space, an integer value.
    const size_t space = line.find_last_of(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    EXPECT_GT(std::stoll(line.substr(space + 1)), 0) << line;
    const bool cpu = stack.find(";[cpu]") != std::string::npos;
    const bool wait = stack.find(";[wait]") != std::string::npos ||
                      stack.find(";[scatter-wait]") != std::string::npos;
    EXPECT_TRUE(cpu || wait) << line;
    saw_wait = saw_wait || wait;
  }
  // Four 100 ms submits: communication wait must dominate somewhere.
  EXPECT_TRUE(saw_wait);
}

TEST(ProfilerTest, WaterfallRendersDropsAndTotals) {
  auto med = MakeSimpleMediator();
  auto r = med->Query("SELECT k FROM T WHERE k <= 9");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(r->profile, nullptr);
  const std::string text = r->profile->WaterfallText();
  EXPECT_NE(text.find("cardinality waterfall (fingerprint"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("totals: cpu"), std::string::npos) << text;
  EXPECT_NE(text.find("= measured"), std::string::npos) << text;
}

TEST(ProfilerTest, ExplainAnalyzeAppendsWaterfall) {
  auto med = MakeSimpleMediator();
  auto report = med->ExplainAnalyze("SELECT k FROM T WHERE k <= 9");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("cardinality waterfall (fingerprint"),
            std::string::npos)
      << *report;
}

TEST(ProfilerTest, ProfilingCanBeDisabled) {
  MediatorOptions opts;
  opts.profile_execution = false;
  auto med = MakeSimpleMediator(opts);
  auto r = med->Query("SELECT k FROM T");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->profile, nullptr);
  EXPECT_EQ(med->profiles().total_queries(), 0);
}

TEST(ProfilerTest, QueryLogCarriesProfileRollup) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T").ok());
  const std::string jsonl = med->query_log()->ToJsonl();
  EXPECT_NE(jsonl.find("\"profile\":{\"nodes\":"), std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"cpu_ms\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"wait_ms\":"), std::string::npos);
}

TEST(ProfilerTest, RegistryAggregatesAcrossQueries) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  EXPECT_EQ(med->profiles().total_queries(), 2);
  EXPECT_EQ(med->profiles().plan_count(), 1u);  // same plan shape
  auto hottest = med->profiles().HottestOperators(3);
  ASSERT_FALSE(hottest.empty());
  EXPECT_EQ(hottest[0].execs, 2);
  EXPECT_GT(hottest[0].total_ms(), 0.0);
  EXPECT_FALSE(med->profiles().ToFolded().empty());
}

TEST(ProfilerTest, MonitorReportShowsProfilingPanels) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  mediator::MonitorSnapshot snap = med->MonitorReport(5);
  EXPECT_EQ(snap.profiled_queries, 1);
  EXPECT_EQ(snap.profiled_plans, 1u);
  ASSERT_FALSE(snap.hottest_operators.empty());
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("hottest operators"), std::string::npos) << text;
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"profiles\":{\"queries\":1"), std::string::npos)
      << json;
  auto parsed = json::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(ProfilerTest, OperatorMetricsFamilyPreRegisteredAndBumped) {
  auto med = MakeSimpleMediator();
  // Pre-registered by the constructor: the whole family is visible at
  // value zero before any query runs.
  metrics::RegistrySnapshot before = med->metrics()->TakeSnapshot();
  ASSERT_TRUE(before.counters.count("disco.exec.operator.submit.evals"));
  ASSERT_TRUE(before.histograms.count("disco.exec.operator.submit.rows"));
  EXPECT_EQ(before.counters["disco.exec.operator.submit.evals"], 0);

  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  metrics::RegistrySnapshot after = med->metrics()->TakeSnapshot();
  EXPECT_GT(after.counters["disco.exec.operator.submit.evals"], 0);
  EXPECT_GT(after.histograms["disco.exec.operator.submit.rows"].count, 0);
}

TEST(ProfilerTest, TraceCarriesCounterTracksAndLaneNames) {
  auto med = MakeSimpleMediator();
  auto r = med->Query("SELECT k FROM T WHERE k <= 9");
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->trace, nullptr);
  const std::string chrome = r->trace->ToChromeJson();
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("\"process_name\""), std::string::npos);
  EXPECT_NE(chrome.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("disco.exec.cpu_ms"), std::string::npos);
  EXPECT_NE(chrome.find("disco.exec.rows"), std::string::npos);
}

// OpenMetrics exposition round-trips histogram _sum/_count (and counter
// totals) against Registry::ToJson.
TEST(ProfilerTest, OpenMetricsRoundTripsAgainstRegistryJson) {
  auto med = MakeSimpleMediator();
  ASSERT_TRUE(med->Query("SELECT k FROM T WHERE k <= 9").ok());
  ASSERT_TRUE(med->Query("SELECT k FROM T").ok());

  auto parsed = json::ParseJson(med->metrics()->ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string om = med->metrics()->ToOpenMetrics();
  ASSERT_NE(om.find("# EOF\n"), std::string::npos);

  auto sanitize = [](const std::string& name) {
    std::string out;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      out += ok ? c : '_';
    }
    return out;
  };
  auto om_value = [&om](const std::string& sample) {
    const std::string needle = "\n" + sample + " ";
    size_t at = om.find(needle);
    if (at == std::string::npos) {
      if (om.rfind(sample + " ", 0) == 0) {
        at = 0;
      } else {
        return std::nan("");
      }
    } else {
      at += 1;
    }
    return std::stod(om.substr(at + sample.size() + 1));
  };

  const json::JsonValue* histograms = (*parsed)->Get("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_FALSE(histograms->members.empty());
  for (const auto& [name, h] : histograms->members) {
    const std::string n = sanitize(name);
    const json::JsonValue* count = h->Get("count");
    const json::JsonValue* sum = h->Get("sum");
    ASSERT_NE(count, nullptr) << name;
    ASSERT_NE(sum, nullptr) << name;
    EXPECT_EQ(om_value(n + "_count"), count->number_value) << name;
    EXPECT_NEAR(om_value(n + "_sum"), sum->number_value, 1e-9) << name;
    // The +Inf bucket always closes the histogram at _count.
    EXPECT_NE(om.find(n + "_bucket{le=\"+Inf\"} "), std::string::npos)
        << name;
  }
  const json::JsonValue* counters = (*parsed)->Get("counters");
  ASSERT_NE(counters, nullptr);
  for (const auto& [name, c] : counters->members) {
    EXPECT_EQ(om_value(sanitize(name) + "_total"), c->number_value) << name;
  }
}

}  // namespace
}  // namespace disco
