// RetryPolicy: backoff shape, deterministic jitter, and the executor's
// retry loop -- exhaustion, recovery, timeouts, and honest charging of
// retry latency to the simulated clock.

#include "mediator/retry_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "mediator/exec.h"
#include "sources/data_source.h"
#include "wrapper/fault_injection.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace mediator {
namespace {

using algebra::Scan;
using algebra::Submit;

RetryPolicy NoJitterPolicy(int attempts) {
  RetryPolicy p = RetryPolicy::Standard(attempts);
  p.jitter_fraction = 0;
  return p;
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.backoff_base_ms = 100;
  p.backoff_multiplier = 2.0;
  p.backoff_cap_ms = 350;
  p.jitter_fraction = 0;
  EXPECT_DOUBLE_EQ(p.BackoffMs(1, nullptr), 100);
  EXPECT_DOUBLE_EQ(p.BackoffMs(2, nullptr), 200);
  EXPECT_DOUBLE_EQ(p.BackoffMs(3, nullptr), 350);  // capped, not 400
  EXPECT_DOUBLE_EQ(p.BackoffMs(9, nullptr), 350);
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy p;
  p.backoff_base_ms = 100;
  p.jitter_fraction = 0.25;
  Rng rng_a(7), rng_b(7);
  for (int i = 1; i <= 20; ++i) {
    double a = p.BackoffMs(1, &rng_a);
    EXPECT_GE(a, 75.0);
    EXPECT_LE(a, 125.0);
    // Same seed, same draw index => bit-identical jitter.
    EXPECT_DOUBLE_EQ(a, p.BackoffMs(1, &rng_b));
  }
}

/// A tiny one-table source behind a fault-injecting wrapper.
std::unique_ptr<wrapper::FaultInjectingWrapper> MakeFlakySource(
    wrapper::FaultProfile profile) {
  auto src = sources::MakeRelationalSource("flaky");
  storage::Table* t =
      src->CreateTable(CollectionSchema("T", {{"k", AttrType::kLong}}));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<wrapper::FaultInjectingWrapper>(std::move(inner),
                                                          profile);
}

TEST(RetryPolicyTest, ExhaustionChargesEveryAttemptAndBackoff) {
  auto flaky = MakeFlakySource(wrapper::FaultProfile::Dead());
  MediatorCostParams params;
  ExecOptions opts;
  opts.retry = NoJitterPolicy(3);
  MediatorExecutor exec({{"flaky", flaky.get()}}, params, nullptr, opts);

  auto r = exec.Execute(*Submit("flaky", Scan("T")));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("gave up after 3 attempts"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(flaky->calls(), 3);
  // 3 failed round trips + backoffs of 100 and 200 ms.
  EXPECT_DOUBLE_EQ(exec.elapsed_ms(), 3 * params.ms_msg_latency + 100 + 200);
}

TEST(RetryPolicyTest, TransientOutageRecoversWithWarning) {
  auto flaky = MakeFlakySource(wrapper::FaultProfile::Outage(2));
  MediatorCostParams params;
  ExecOptions opts;
  opts.retry = NoJitterPolicy(4);
  MediatorExecutor exec({{"flaky", flaky.get()}}, params, nullptr, opts);

  auto r = exec.Execute(*Submit("flaky", Scan("T")));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 20u);
  EXPECT_EQ(flaky->calls(), 3);  // fail, fail, succeed
  // Retry latency shows up honestly in measured time: two failed round
  // trips and two backoffs (100 + 200 ms) on top of the successful
  // submit (source time + round trip + 20 tuples * 9 bytes shipped).
  ASSERT_EQ(r->subqueries.size(), 1u);
  EXPECT_DOUBLE_EQ(r->measured_ms,
                   r->subqueries[0].source_ms + 3 * params.ms_msg_latency +
                       params.ms_per_net_byte * 20 * 9 + 100 + 200);
  // The survived degradation is reported.
  ASSERT_EQ(r->warnings.size(), 1u);
  EXPECT_EQ(r->warnings[0].source, "flaky");
  EXPECT_EQ(r->warnings[0].attempts, 3);
  EXPECT_NE(r->warnings[0].ToString().find("recovered"), std::string::npos);
}

TEST(RetryPolicyTest, SlowSourceTimesOutAndChargesTheBudget) {
  // The source answers, but 500 ms added latency blows the 100 ms
  // per-attempt budget every time.
  auto flaky =
      MakeFlakySource(wrapper::FaultProfile{}.WithLatency(500));
  MediatorCostParams params;
  ExecOptions opts;
  opts.retry = NoJitterPolicy(2);
  opts.retry.attempt_timeout_ms = 100;
  MediatorExecutor exec({{"flaky", flaky.get()}}, params, nullptr, opts);

  auto r = exec.Execute(*Submit("flaky", Scan("T")));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().message().find("timed out"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(flaky->calls(), 2);
  // Each attempt charges the budget (not the overrun) plus the round
  // trip; one backoff in between.
  EXPECT_DOUBLE_EQ(exec.elapsed_ms(),
                   2 * (params.ms_msg_latency + 100) + 100);
}

TEST(RetryPolicyTest, NonRetryableErrorsAreNotRetried) {
  auto flaky = MakeFlakySource(wrapper::FaultProfile{});
  MediatorCostParams params;
  ExecOptions opts;
  opts.retry = NoJitterPolicy(5);
  MediatorExecutor exec({{"flaky", flaky.get()}}, params, nullptr, opts);

  // Unknown collection inside the submit: a plan bug, not flakiness.
  auto r = exec.Execute(*Submit("flaky", Scan("NoSuchCollection")));
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().IsUnavailable()) << r.status().ToString();
  EXPECT_EQ(flaky->calls(), 1);  // no retry burned
  // The source name is chained onto the error.
  EXPECT_NE(r.status().message().find("source 'flaky'"), std::string::npos)
      << r.status().ToString();
}

}  // namespace
}  // namespace mediator
}  // namespace disco
