// The closed observability loop, end to end (ISSUE acceptance
// scenario): a FaultInjectingWrapper latency shift makes the cost
// model stale; the DriftMonitor fires exactly one event naming the
// offending (source, operator, rule scope); history recalibration
// brings the windowed q-error back under the threshold; and the
// MonitorReport plus the replayed query log are byte-identical across
// two same-seed runs.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/str_util.h"
#include "costmodel/drift.h"
#include "mediator/mediator.h"
#include "mediator/replay.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

using costmodel::DriftMonitor;
using costmodel::Scope;
using mediator::Mediator;
using mediator::MediatorOptions;
using wrapper::FaultInjectingWrapper;
using wrapper::FaultProfile;

constexpr int kHealthyQueries = 10;
constexpr int kShiftedQueries = 8;
constexpr double kLatencyShiftMs = 50000;

std::unique_ptr<FaultInjectingWrapper> MakeSource(const std::string& source,
                                                  const std::string& collection,
                                                  int rows,
                                                  FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    EXPECT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<FaultInjectingWrapper>(std::move(inner), profile);
}

MediatorOptions LoopOptions() {
  MediatorOptions opts;
  opts.drift.quantile = 0.9;
  opts.drift.window_ms = 120000;   // several shifted queries stay in view
  opts.drift.window_buckets = 6;
  opts.drift.baseline_observations = 6;
  opts.drift.min_window_observations = 3;
  opts.drift.degrade_ratio = 2.0;
  return opts;
}

/// Everything one scenario run produces that the determinism check
/// compares byte for byte.
struct LoopOutputs {
  size_t events_after_baseline = 0;
  size_t events_after_first_shift = 0;
  size_t events_at_end = 0;
  costmodel::DriftEvent event;        // the single raised event
  std::string detection_trace;        // span tree of the breach query
  DriftMonitor::CellStatus final_cell;  // the query-scope cell at the end
  bool found_final_cell = false;
  double adjustment_factor = 1;
  int64_t plan_cache_invalidations = 0;
  std::string monitor_text;
  std::string monitor_json;
  std::string jsonl;
  std::string replay_text;
  int64_t replayed = 0;
  int64_t replay_failed = 0;
};

LoopOutputs RunScenario() {
  LoopOutputs out;
  Mediator med(LoopOptions());
  auto src = MakeSource("src", "T", 400, FaultProfile{});
  FaultInjectingWrapper* faults = src.get();
  EXPECT_TRUE(med.RegisterWrapper(std::move(src)).ok());

  const std::string sql = "SELECT k FROM T";
  auto run = [&]() -> std::string {
    auto r = med.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r->trace != nullptr ? r->trace->ToText() : "";
  };

  // Phase 1: healthy traffic freezes a baseline (q-error ~1: the
  // query-scope history makes repeat estimates exact).
  for (int i = 0; i < kHealthyQueries; ++i) run();
  out.events_after_baseline = med.drift()->events().size();

  // Phase 2: the source's behaviour shifts under the model's feet.
  faults->SetProfile(FaultProfile{}.WithLatency(kLatencyShiftMs));
  out.detection_trace = run();
  out.events_after_first_shift = med.drift()->events().size();
  if (!med.drift()->events().empty()) out.event = med.drift()->events().front();

  // Phase 3: keep running. History recalibrates (the stale record is
  // replaced), stale samples age out of the window, and the latch must
  // release WITHOUT a second alert.
  for (int i = 1; i < kShiftedQueries; ++i) run();
  out.events_at_end = med.drift()->events().size();
  for (const DriftMonitor::CellStatus& c :
       med.drift()->Cells(med.sim_now_ms())) {
    if (c.key.scope == Scope::kQuery) {
      out.final_cell = c;
      out.found_final_cell = true;
    }
  }
  out.adjustment_factor =
      med.history()->AdjustmentFactor("src", out.event.kind);

  out.monitor_text = med.MonitorReport().ToText();
  out.monitor_json = med.MonitorReport().ToJson();
  out.plan_cache_invalidations = med.MonitorReport().plan_cache_invalidations;
  out.jsonl = med.query_log()->ToJsonl();

  // Replay the flight-recorder log against a fresh, healthy same-seed
  // federation: the calibration regression check.
  Mediator fresh(LoopOptions());
  EXPECT_TRUE(
      fresh.RegisterWrapper(MakeSource("src", "T", 400, FaultProfile{})).ok());
  auto replay = mediator::ReplayQueryLog(&fresh, out.jsonl);
  EXPECT_TRUE(replay.ok()) << replay.status().ToString();
  if (replay.ok()) {
    out.replay_text = replay->ToText();
    out.replayed = static_cast<int64_t>(replay->queries.size());
    out.replay_failed = replay->failed;
  }
  return out;
}

TEST(ObservabilityLoopTest, DriftFiresOnceAndRecalibrationRecovers) {
  LoopOutputs run = RunScenario();

  // Healthy traffic raises nothing.
  EXPECT_EQ(run.events_after_baseline, 0u);

  // The very first post-shift measurement breaches: exactly one event,
  // naming the offending source, operator, and rule scope.
  ASSERT_EQ(run.events_after_first_shift, 1u);
  EXPECT_EQ(run.event.source, "src");
  EXPECT_EQ(run.event.scope, Scope::kQuery);
  EXPECT_GT(run.event.window_q, 2.0 * run.event.baseline_q);
  EXPECT_NEAR(run.event.baseline_q, 1.0, 0.05);
  EXPECT_NE(run.event.recommendation.find("query-scope"), std::string::npos)
      << run.event.recommendation;
  // The breach query's span tree carries the drift instant event.
  EXPECT_NE(run.detection_trace.find("cost-model drift @src"),
            std::string::npos)
      << run.detection_trace;

  // Seven more degraded-then-recovering queries: still exactly one
  // event (latched -- no alert storm).
  EXPECT_EQ(run.events_at_end, 1u);

  // The latched drift event is a plan-cache invalidation hook: the
  // source's cached plan template was dropped (docs/PERFORMANCE.md).
  EXPECT_GE(run.plan_cache_invalidations, 1);

  // Closed loop closed: history recalibrated (the query-scope record
  // now reflects the shifted cost), the stale samples aged out, and the
  // windowed quantile is back under the breach threshold.
  ASSERT_TRUE(run.found_final_cell);
  EXPECT_FALSE(run.final_cell.breached);
  EXPECT_LE(run.final_cell.window_q,
            2.0 * run.final_cell.baseline_q);
  // The EWMA side of recalibration moved too: estimates for this
  // (source, operator) are now scaled up toward the shifted reality.
  EXPECT_GT(run.adjustment_factor, 1.5);

  // The monitor report reflects the loop.
  EXPECT_NE(run.monitor_text.find("drift: 1 event raised"),
            std::string::npos)
      << run.monitor_text;
  EXPECT_NE(run.monitor_json.find("\"drift_events\":1"), std::string::npos);

  // The flight recorder captured every query and replays cleanly.
  EXPECT_EQ(run.replayed, kHealthyQueries + kShiftedQueries);
  EXPECT_EQ(run.replay_failed, 0);
  EXPECT_NE(run.jsonl.find("\"sql\":\"SELECT k FROM T\""),
            std::string::npos);
  EXPECT_NE(run.jsonl.find("\"scope\":\"query\""), std::string::npos);
}

TEST(ObservabilityLoopTest, ReportsAndReplayAreByteIdenticalAcrossRuns) {
  LoopOutputs a = RunScenario();
  LoopOutputs b = RunScenario();
  EXPECT_EQ(a.monitor_text, b.monitor_text);
  EXPECT_EQ(a.monitor_json, b.monitor_json);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.replay_text, b.replay_text);
  EXPECT_EQ(a.detection_trace, b.detection_trace);
}

/// The fast-planning determinism contract (docs/PERFORMANCE.md): a
/// planning pool of any size must leave no observable residue -- same
/// chosen plans, same fingerprints, byte-identical traces and reports.
struct PoolRunOutputs {
  std::vector<std::string> plan_texts;
  std::vector<std::string> fingerprints;
  std::vector<std::string> chrome_traces;
  std::vector<size_t> tuple_counts;
  std::string monitor_text;
  std::string monitor_json;
};

PoolRunOutputs RunJoinWorkload(int planning_threads) {
  MediatorOptions opts;
  opts.planning_threads = planning_threads;
  Mediator med(opts);

  auto facts = sources::MakeRelationalSource("facts");
  storage::Table* fact = facts->CreateTable(CollectionSchema(
      "Fact", {{"fid", AttrType::kLong},
               {"d0", AttrType::kLong},
               {"d1", AttrType::kLong},
               {"d2", AttrType::kLong}}));
  for (int i = 0; i < 400; ++i) {
    EXPECT_TRUE(fact->Insert({Value(int64_t{i}), Value(int64_t{i % 5}),
                              Value(int64_t{i % 9}), Value(int64_t{i % 4})})
                    .ok());
  }
  EXPECT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(facts),
                                      wrapper::SimulatedWrapper::Options{}))
                  .ok());
  auto dims = sources::MakeRelationalSource("dims");
  for (int d = 0; d < 3; ++d) {
    storage::Table* dim = dims->CreateTable(CollectionSchema(
        StringPrintf("Dim%d", d), {{StringPrintf("k%d", d), AttrType::kLong},
                                   {StringPrintf("v%d", d), AttrType::kLong}}));
    for (int64_t i = 0; i < 20 + 15 * d; ++i) {
      EXPECT_TRUE(dim->Insert({Value(i), Value(i * 2)}).ok());
    }
  }
  EXPECT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(dims),
                                      wrapper::SimulatedWrapper::Options{}))
                  .ok());

  // Join shapes exercise parallel candidate pricing; the repeats land in
  // the plan cache, covering the fast path end to end.
  const std::vector<std::string> workload = {
      "SELECT fid FROM Fact, Dim0 WHERE Fact.d0 = Dim0.k0 AND fid <= 50",
      "SELECT fid FROM Fact, Dim0, Dim1 "
      "WHERE Fact.d0 = Dim0.k0 AND Fact.d1 = Dim1.k1 AND fid <= 30",
      "SELECT fid FROM Fact, Dim0, Dim1, Dim2 "
      "WHERE Fact.d0 = Dim0.k0 AND Fact.d1 = Dim1.k1 AND Fact.d2 = Dim2.k2",
      "SELECT fid FROM Fact, Dim0 WHERE Fact.d0 = Dim0.k0 AND fid <= 20",
      "SELECT fid FROM Fact, Dim0, Dim1, Dim2 "
      "WHERE Fact.d0 = Dim0.k0 AND Fact.d1 = Dim1.k1 AND Fact.d2 = Dim2.k2",
  };
  PoolRunOutputs out;
  for (const std::string& sql : workload) {
    auto r = med.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) continue;
    out.plan_texts.push_back(r->plan_text);
    out.fingerprints.push_back(r->plan_fingerprint);
    out.tuple_counts.push_back(r->tuples.size());
    out.chrome_traces.push_back(r->trace != nullptr
                                    ? r->trace->ToChromeJson()
                                    : "");
  }
  out.monitor_text = med.MonitorReport().ToText();
  out.monitor_json = med.MonitorReport().ToJson();
  return out;
}

TEST(ObservabilityLoopTest, PlanningIsByteIdenticalAcrossPoolSizes) {
  const PoolRunOutputs serial = RunJoinWorkload(1);
  for (int threads : {2, 4}) {
    const PoolRunOutputs pooled = RunJoinWorkload(threads);
    EXPECT_EQ(pooled.plan_texts, serial.plan_texts) << "threads=" << threads;
    EXPECT_EQ(pooled.fingerprints, serial.fingerprints)
        << "threads=" << threads;
    EXPECT_EQ(pooled.tuple_counts, serial.tuple_counts)
        << "threads=" << threads;
    // Byte-identical span trees: parallel pricing may not leave a trace
    // (pun intended) -- counters, timings, and span order all match.
    EXPECT_EQ(pooled.chrome_traces, serial.chrome_traces)
        << "threads=" << threads;
    EXPECT_EQ(pooled.monitor_text, serial.monitor_text)
        << "threads=" << threads;
    EXPECT_EQ(pooled.monitor_json, serial.monitor_json)
        << "threads=" << threads;
  }
}

TEST(ObservabilityLoopTest, ReRegisterWrapperResetsDriftBaselines) {
  Mediator med(LoopOptions());
  auto src = MakeSource("src", "T", 50, FaultProfile{});
  ASSERT_TRUE(med.RegisterWrapper(std::move(src)).ok());
  for (int i = 0; i < kHealthyQueries; ++i) {
    ASSERT_TRUE(med.Query("SELECT k FROM T").ok());
  }
  ASSERT_FALSE(med.drift()->Cells(med.sim_now_ms()).empty());
  ASSERT_TRUE(med.ReRegisterWrapper("src").ok());
  // An administrative refresh forgets the frozen baselines: the monitor
  // re-learns what "healthy" means from post-refresh traffic.
  EXPECT_TRUE(med.drift()->Cells(med.sim_now_ms()).empty());
}

}  // namespace
}  // namespace disco
