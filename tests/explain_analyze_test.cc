// EXPLAIN ANALYZE: per-node estimated vs measured costs with q-error,
// and the cumulative cost-model accuracy scoreboard.

#include <gtest/gtest.h>

#include <memory>

#include "bench007/oo7.h"
#include "costmodel/accuracy.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

using costmodel::AccuracyTracker;
using mediator::Mediator;

TEST(QErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(5.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(AccuracyTracker::QError(10.0, 5.0), 2.0);
  // Degenerate inputs clamp instead of dividing by zero.
  EXPECT_GE(AccuracyTracker::QError(0.0, 10.0), 1.0);
  EXPECT_GE(AccuracyTracker::QError(10.0, 0.0), 1.0);
}

TEST(AccuracyTrackerTest, CellsAccumulatePerScope) {
  AccuracyTracker tracker;
  tracker.Record("oo7", algebra::OpKind::kSubmit,
                 costmodel::Scope::kWrapper, 10.0, 20.0);
  tracker.Record("OO7", algebra::OpKind::kSubmit,
                 costmodel::Scope::kWrapper, 40.0, 20.0);
  tracker.Record("erp", algebra::OpKind::kSubmit,
                 costmodel::Scope::kDefault, 5.0, 5.0);
  EXPECT_EQ(tracker.num_observations(), 3);
  ASSERT_EQ(tracker.cells().size(), 2u);  // source names are folded
  const auto it = tracker.cells().find(AccuracyTracker::Key{
      "oo7", algebra::OpKind::kSubmit, costmodel::Scope::kWrapper});
  ASSERT_NE(it, tracker.cells().end());
  const auto& oo7 = it->second;
  EXPECT_EQ(oo7.count, 2);
  EXPECT_DOUBLE_EQ(oo7.geo_mean_q(), 2.0);  // both observations have q=2
  EXPECT_DOUBLE_EQ(oo7.max_q, 2.0);

  const std::string board = tracker.FormatScoreboard();
  EXPECT_NE(board.find("oo7"), std::string::npos) << board;
  EXPECT_NE(board.find("wrapper"), std::string::npos) << board;
  EXPECT_NE(board.find("geo-q"), std::string::npos) << board;
}

TEST(AccuracyTrackerTest, EmptyScoreboardHasPlaceholder) {
  AccuracyTracker tracker;
  EXPECT_NE(tracker.FormatScoreboard().find("no executions"),
            std::string::npos);
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    med_ = std::make_unique<Mediator>();

    bench007::OO7Config config;
    config.num_atomic_parts = 2000;
    config.connections_per_atomic = 1;
    config.num_composite_parts = 100;
    config.num_documents = 100;
    auto oo7 = bench007::BuildOO7Source(config);
    ASSERT_TRUE(oo7.ok()) << oo7.status().ToString();
    wrapper::SimulatedWrapper::Options oo7_opts;
    oo7_opts.cost_rules = bench007::Oo7YaoRuleText();
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(*oo7), oo7_opts))
                    .ok());

    auto rel = sources::MakeRelationalSource("erp");
    storage::Table* suppliers = rel->CreateTable(CollectionSchema(
        "Supplier", {{"sid", AttrType::kLong},
                     {"partType", AttrType::kString},
                     {"region", AttrType::kString}}));
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(suppliers
                      ->Insert({Value(int64_t{i}),
                                Value(std::string("t") +
                                      std::to_string(i % 10)),
                                Value(std::string(i % 2 ? "east" : "west"))})
                      .ok());
    }
    ASSERT_TRUE(suppliers->CreateIndex("sid").ok());
    ASSERT_TRUE(med_->RegisterWrapper(
                        std::make_unique<wrapper::SimulatedWrapper>(
                            std::move(rel),
                            wrapper::SimulatedWrapper::Options()))
                    .ok());
  }

  std::unique_ptr<Mediator> med_;
};

TEST_F(ExplainAnalyzeTest, TwoSourceJoinShowsPerNodeQError) {
  auto report = med_->ExplainAnalyze(
      "SELECT id, sid FROM AtomicPart, Supplier "
      "WHERE AtomicPart.type = Supplier.partType AND id <= 20 "
      "AND region = 'east'");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string& text = *report;

  // The column header and the plan, with submits to both sources.
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  for (const char* col : {"est rows", "est ms", "act rows", "act ms",
                          "q-err"}) {
    EXPECT_NE(text.find(col), std::string::npos) << col << "\n" << text;
  }
  EXPECT_NE(text.find("@oo7"), std::string::npos) << text;
  EXPECT_NE(text.find("@erp"), std::string::npos) << text;
  // Nodes executed inside a source report no mediator-side measurement.
  EXPECT_NE(text.find("@source"), std::string::npos) << text;
  // Totals line with overall q-error.
  EXPECT_NE(text.find("total: estimated"), std::string::npos) << text;
  EXPECT_NE(text.find("q-error"), std::string::npos) << text;

  // Executing fed the accuracy tracker: one observation per submitted
  // subquery, and the scoreboard renders real cells.
  EXPECT_GE(med_->accuracy().num_observations(), 2);
  EXPECT_NE(text.find("source"), std::string::npos) << text;
  EXPECT_NE(text.find("geo-q"), std::string::npos) << text;
  EXPECT_EQ(text.find("no executions"), std::string::npos) << text;
}

TEST_F(ExplainAnalyzeTest, ExecutionSideEffectsMatchQuery) {
  // EXPLAIN ANALYZE really executes: history feedback happens and the
  // metrics registry sees the submits.
  auto report = med_->ExplainAnalyze(
      "SELECT id FROM AtomicPart WHERE id <= 499");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(med_->registry()->num_query_entries(), 0);
  EXPECT_GE(med_->metrics()->counter("disco.exec.submits")->value(), 1);
  EXPECT_EQ(med_->metrics()->counter("disco.explain_analyze.count")->value(),
            1);
}

TEST_F(ExplainAnalyzeTest, RepeatedQueryDrivesQErrorDown) {
  const char* sql = "SELECT id FROM AtomicPart WHERE id <= 499";
  ASSERT_TRUE(med_->Query(sql).ok());
  // The second run estimates from query-scope history: its scoreboard
  // cell must be nearly perfect.
  ASSERT_TRUE(med_->Query(sql).ok());
  bool saw_query_scope = false;
  for (const auto& [key, cell] : med_->accuracy().cells()) {
    if (key.scope == costmodel::Scope::kQuery) {
      saw_query_scope = true;
      EXPECT_LT(cell.geo_mean_q(), 1.1) << med_->accuracy().FormatScoreboard();
    }
  }
  EXPECT_TRUE(saw_query_scope) << med_->accuracy().FormatScoreboard();
}

}  // namespace
}  // namespace disco
