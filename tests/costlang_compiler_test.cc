#include "costlang/compiler.h"

#include <gtest/gtest.h>

namespace disco {
namespace costlang {
namespace {

CompileSchema EmployeeSchema() {
  CompileSchema schema;
  schema.AddCollection("Employee", {"salary", "name"});
  schema.AddCollection("Book", {"id", "author"});
  return schema;
}

TEST(CompilerTest, LiteralVsVariableResolution) {
  auto rules = CompileRuleText(
      "select(Employee, salary = V) { TotalTime = 1; }\n"
      "select(C, A = V) { TotalTime = 2; }",
      EmployeeSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->rules.size(), 2u);

  const CompiledPattern& specific = rules->rules[0].pattern;
  EXPECT_TRUE(specific.inputs[0].is_literal);
  EXPECT_EQ(specific.inputs[0].name, "Employee");
  EXPECT_TRUE(specific.sel_attr.is_literal);
  EXPECT_EQ(specific.sel_attr.name, "salary");
  EXPECT_FALSE(specific.sel_value.is_literal);
  EXPECT_TRUE(specific.predicate_bound);
  EXPECT_TRUE(specific.collection_bound);
  EXPECT_EQ(specific.specificity, 2);

  const CompiledPattern& generic = rules->rules[1].pattern;
  EXPECT_FALSE(generic.inputs[0].is_literal);
  EXPECT_FALSE(generic.sel_attr.is_literal);
  EXPECT_EQ(generic.specificity, 0);
}

TEST(CompilerTest, CaseInsensitiveLiterals) {
  // The paper writes `employee` in a head and `Employee` in the body.
  auto rules = CompileRuleText(
      "scan(employee) { TotalTime = Employee.TotalSize * 2; }",
      EmployeeSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_TRUE(rules->rules[0].pattern.inputs[0].is_literal);
  EXPECT_EQ(rules->rules[0].pattern.inputs[0].name, "Employee");
}

TEST(CompilerTest, SpecificityOrderingOfPaperExamples) {
  // Section 4.2's matching-order example, expressed as specificity.
  auto rules = CompileRuleText(
      "select(Employee, salary = 77) { TotalTime = 1; }\n"
      "select(Employee, salary = A) { TotalTime = 2; }\n"
      "select(Employee, P) { TotalTime = 3; }\n"
      "select(R, P) { TotalTime = 4; }\n"
      "join(Employee, Book, x1.id = x2.id) { TotalTime = 5; }\n"
      "join(Employee, Book, P) { TotalTime = 6; }\n"
      "join(R1, R2, P) { TotalTime = 7; }",
      EmployeeSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  std::vector<int> spec;
  for (const CompiledRule& r : rules->rules) {
    spec.push_back(r.pattern.specificity);
  }
  // Each select is strictly more specific than the next.
  EXPECT_GT(spec[0], spec[1]);
  EXPECT_GT(spec[1], spec[2]);
  EXPECT_GT(spec[2], spec[3]);
  EXPECT_GT(spec[4], spec[5]);
  EXPECT_GT(spec[5], spec[6]);
}

TEST(CompilerTest, GlobalsEvaluateAtCompileTime) {
  auto rules = CompileRuleText(
      "define PageSize = 4000;\n"
      "define TwoPages = PageSize * 2;\n"
      "scan(C) { TotalTime = TwoPages; }",
      CompileSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->global_values.size(), 2u);
  EXPECT_DOUBLE_EQ(rules->global_values[1].AsDouble(), 8000);
}

TEST(CompilerTest, GlobalsMayUseBuiltins) {
  auto rules = CompileRuleText(
      "define E = exp(1);\nscan(C) { TotalTime = E; }", CompileSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_NEAR(rules->global_values[0].AsDouble(), 2.71828, 1e-4);
}

TEST(CompilerTest, GlobalsMayNotReferenceStatistics) {
  EXPECT_FALSE(CompileRuleText(
                   "define Bad = Employee.CountObject;\n"
                   "scan(C) { TotalTime = Bad; }",
                   EmployeeSchema())
                   .ok());
}

TEST(CompilerTest, DuplicateGlobalRejected) {
  EXPECT_TRUE(CompileRuleText("define A = 1;\ndefine A = 2;\n"
                              "scan(C) { TotalTime = A; }",
                              CompileSchema())
                  .status()
                  .IsParseError());
}

TEST(CompilerTest, RuleLocalsCompileInOrder) {
  auto rules = CompileRuleText(
      "select(C, A <= V) {\n"
      "  CountPage = C.TotalSize / 4096;\n"
      "  HalfPage = CountPage / 2;\n"
      "  TotalTime = HalfPage * 25;\n"
      "}",
      CompileSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  const CompiledRule& rule = rules->rules[0];
  ASSERT_EQ(rule.locals.size(), 2u);
  EXPECT_EQ(rule.locals[0].name, "CountPage");
  EXPECT_EQ(rule.locals[1].name, "HalfPage");
  ASSERT_EQ(rule.formulas.size(), 1u);
  EXPECT_EQ(rule.formulas[0].target, CostVarId::kTotalTime);
}

TEST(CompilerTest, LocalReferencedBeforeDefinitionRejected) {
  EXPECT_FALSE(CompileRuleText(
                   "scan(C) {\n"
                   "  TotalTime = Later * 2;\n"
                   "  Later = 5;\n"
                   "}",
                   CompileSchema())
                   .ok());
}

TEST(CompilerTest, SelfVarAndInputRefsRecorded) {
  auto rules = CompileRuleText(
      "select(C, P) {\n"
      "  CountObject = C.CountObject * selectivity();\n"
      "  TotalTime = C.TotalTime + CountObject * 9;\n"
      "}",
      CompileSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  const CompiledRule& rule = rules->rules[0];
  // Formula 0 (CountObject) reads input CountObject.
  ASSERT_EQ(rule.formulas[0].program.input_var_refs.size(), 1u);
  EXPECT_EQ(rule.formulas[0].program.input_var_refs[0].second,
            CostVarId::kCountObject);
  // Formula 1 (TotalTime) reads input TotalTime and self CountObject.
  EXPECT_EQ(rule.formulas[1].program.self_var_refs.size(), 1u);
  EXPECT_EQ(rule.formulas[1].program.self_var_refs[0],
            CostVarId::kCountObject);
}

TEST(CompilerTest, DuplicateTargetInOneRuleRejected) {
  EXPECT_TRUE(CompileRuleText(
                  "scan(C) { TotalTime = 1; TotalTime = 2; }", CompileSchema())
                  .status()
                  .IsParseError());
}

TEST(CompilerTest, UnknownNamesRejected) {
  EXPECT_FALSE(
      CompileRuleText("scan(C) { TotalTime = Mystery; }", CompileSchema())
          .ok());
  EXPECT_FALSE(CompileRuleText("scan(C) { TotalTime = D.CountObject; }",
                               CompileSchema())
                   .ok());
  EXPECT_FALSE(
      CompileRuleText("scan(C) { TotalTime = nosuchfn(1); }", CompileSchema())
          .ok());
}

TEST(CompilerTest, ArityChecked) {
  EXPECT_FALSE(
      CompileRuleText("scan(C) { TotalTime = exp(1, 2); }", CompileSchema())
          .ok());
  EXPECT_FALSE(
      CompileRuleText("scan(C) { TotalTime = pow(2); }", CompileSchema())
          .ok());
}

TEST(CompilerTest, BadHeadShapesRejected) {
  CompileSchema schema = EmployeeSchema();
  // join needs at least two inputs.
  EXPECT_FALSE(CompileRuleText("join(C) { TotalTime = 1; }", schema).ok());
  // scan takes no predicate.
  EXPECT_FALSE(
      CompileRuleText("scan(C, A = V) { TotalTime = 1; }", schema).ok());
  // unknown operator.
  EXPECT_FALSE(
      CompileRuleText("frobnicate(C) { TotalTime = 1; }", schema).ok());
  // join pattern must be an equi-join.
  EXPECT_FALSE(
      CompileRuleText("join(C1, C2, a < b) { TotalTime = 1; }", schema).ok());
}

TEST(CompilerTest, RepeatedVariableUnifiesToOneSlot) {
  auto rules = CompileRuleText("join(C, C, A1 = A2) { TotalTime = 1; }",
                               CompileSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  // Slots: C, A1, A2 (C interned once).
  EXPECT_EQ(rules->rules[0].binding_slots.size(), 3u);
}

TEST(CompilerTest, AttrStatPathsCompile) {
  auto rules = CompileRuleText(
      "select(C, A = V) {\n"
      "  TotalTime = C.A.CountDistinct + A.CountDistinct\n"
      "            + C.salary.Min + CountDistinct;\n"
      "}",
      EmployeeSchema());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
}

TEST(CompilerTest, ProvidesReportsTargets) {
  auto rules = CompileRuleText(
      "scan(C) { TotalTime = 1; CountObject = 2; }", CompileSchema());
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->rules[0].Provides(CostVarId::kTotalTime));
  EXPECT_TRUE(rules->rules[0].Provides(CostVarId::kCountObject));
  EXPECT_FALSE(rules->rules[0].Provides(CostVarId::kTimeNext));
}

TEST(CompilerTest, Figure13RuleCompiles) {
  CompileSchema schema;
  schema.AddCollection("AtomicPart", {"id", "docId"});
  auto rules = CompileRuleText(
      "define IO = 25;\n"
      "define Output = 9;\n"
      "define PageSize = 4096;\n"
      "select(C, id <= V) {\n"
      "  CountPage = C.TotalSize / PageSize;\n"
      "  CountObject = C.CountObject * (V - C.id.Min)\n"
      "              / (C.id.Max - C.id.Min);\n"
      "  TotalTime = IO * CountPage * (1 - exp(-1 * (CountObject/CountPage)))\n"
      "            + CountObject * Output;\n"
      "}",
      schema);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  const CompiledPattern& pattern = rules->rules[0].pattern;
  EXPECT_TRUE(pattern.sel_attr.is_literal);
  EXPECT_EQ(pattern.sel_op, algebra::CmpOp::kLe);
  EXPECT_TRUE(pattern.predicate_bound);
}

}  // namespace
}  // namespace costlang
}  // namespace disco
