// Properties of the generic cost model (Section 2.3): estimates scale
// sensibly with statistics, index paths win when selective, join
// strategies pick a minimum, sizes propagate.

#include "costmodel/generic_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "costmodel/estimator.h"

namespace disco {
namespace costmodel {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;

class GenericModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallGenericModel(&registry_, params_).ok());
    ASSERT_TRUE(catalog_.RegisterSource("src").ok());
  }

  void AddCollection(const std::string& name, int64_t count,
                     int64_t object_size, bool indexed,
                     int64_t count_distinct) {
    CollectionSchema schema(name, {{"k", AttrType::kLong}});
    CollectionStats stats;
    stats.extent = ExtentStats{count, count * object_size, object_size};
    AttributeStats k;
    k.indexed = indexed;
    k.count_distinct = count_distinct;
    k.min = Value(int64_t{0});
    k.max = Value(count_distinct - 1);
    stats.attributes["k"] = k;
    ASSERT_TRUE(catalog_.RegisterCollection("src", schema, stats).ok());
  }

  double TotalTime(const algebra::Operator& plan) {
    CostEstimator est(&registry_, &catalog_);
    auto r = est.EstimateAt(plan, "src");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->root.total_time();
  }

  CostVector Estimate(const algebra::Operator& plan) {
    CostEstimator est(&registry_, &catalog_);
    auto r = est.EstimateAt(plan, "src");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->root;
  }

  CalibrationParams params_;
  RuleRegistry registry_;
  Catalog catalog_;
};

TEST_F(GenericModelTest, ScanCostGrowsWithCollectionSize) {
  AddCollection("Small", 100, 100, false, 10);
  AddCollection("Big", 100000, 100, false, 10);
  EXPECT_LT(TotalTime(*Scan("Small")), TotalTime(*Scan("Big")));
}

TEST_F(GenericModelTest, ScanSizesPassThrough) {
  AddCollection("T", 5000, 80, false, 50);
  CostVector v = Estimate(*Scan("T"));
  EXPECT_DOUBLE_EQ(v.count_object(), 5000);
  EXPECT_DOUBLE_EQ(v.object_size(), 80);
  EXPECT_DOUBLE_EQ(v.total_size(), 400000);
  EXPECT_GT(v.time_first(), 0);
  EXPECT_LE(v.time_first(), v.total_time());
}

TEST_F(GenericModelTest, SelectReducesCardinalityBySelectivity) {
  AddCollection("T", 10000, 100, false, 100);
  auto plan = Select(Scan("T"), "k", CmpOp::kEq, Value(int64_t{5}));
  CostVector v = Estimate(*plan);
  EXPECT_DOUBLE_EQ(v.count_object(), 100);  // 10000 / 100 distinct
  EXPECT_DOUBLE_EQ(v.total_size(), 100 * 100);
}

TEST_F(GenericModelTest, IndexBeatsSequentialForSelectivePredicate) {
  AddCollection("Indexed", 100000, 100, true, 10000);
  AddCollection("Plain", 100000, 100, false, 10000);
  auto indexed_plan =
      Select(Scan("Indexed"), "k", CmpOp::kEq, Value(int64_t{3}));
  auto plain_plan =
      Select(Scan("Plain"), "k", CmpOp::kEq, Value(int64_t{3}));
  EXPECT_LT(TotalTime(*indexed_plan), TotalTime(*plain_plan) / 10);
}

TEST_F(GenericModelTest, IndexIrrelevantForUnselectivePredicate) {
  AddCollection("T", 100000, 100, true, 10000);
  // k >= 0 keeps everything; the sequential strategy should win or tie,
  // and the cost must be at least the scan's.
  auto plan = Select(Scan("T"), "k", CmpOp::kGe, Value(int64_t{0}));
  EXPECT_GE(TotalTime(*plan), TotalTime(*Scan("T")));
}

TEST_F(GenericModelTest, SelectCostMonotoneInSelectivity) {
  AddCollection("T", 50000, 100, true, 50000);
  double prev = 0;
  for (int64_t cutoff : {499, 4999, 24999, 49999}) {
    auto plan = Select(Scan("T"), "k", CmpOp::kLe, Value(cutoff));
    double t = TotalTime(*plan);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_F(GenericModelTest, JoinPicksMinimumStrategy) {
  AddCollection("L", 1000, 100, false, 1000);
  AddCollection("R", 1000, 100, true, 1000);
  auto join = algebra::Join(Scan("L"), Scan("R"),
                            algebra::JoinPredicate{"k", "k"});
  double t = TotalTime(*join);
  // Hand-compute the three strategies of the generic model and check
  // min-wins picked their minimum.
  double scan_l = TotalTime(*Scan("L"));
  double scan_r = TotalTime(*Scan("R"));
  const double out = 1000.0 * 1000 / 1000;  // |L||R|/min(distinct)
  const double cmp = params_.ms_per_cmp, obj = params_.ms_per_object;
  double nested = scan_l + scan_r + cmp * 1000 * 1000 + obj * out;
  double log_n = std::log2(1000.0);
  double sort_merge = scan_l + scan_r + cmp * 1000 * log_n * 2 +
                      cmp * 2000 + obj * out;
  double index_join = scan_l +
                      1000 * (params_.ms_index_probe + params_.ms_per_io) +
                      obj * out;
  EXPECT_NEAR(t, std::min({nested, sort_merge, index_join}), 1.0);
}

TEST_F(GenericModelTest, JoinCardinalityAndWidth) {
  AddCollection("L", 2000, 64, false, 100);
  AddCollection("R", 500, 32, false, 50);
  auto join = algebra::Join(Scan("L"), Scan("R"),
                            algebra::JoinPredicate{"k", "k"});
  CostVector v = Estimate(*join);
  // |L|*|R| / min(100, 50).
  EXPECT_DOUBLE_EQ(v.count_object(), 2000.0 * 500 / 50);
  EXPECT_DOUBLE_EQ(v.object_size(), 96);
}

TEST_F(GenericModelTest, SortIsBlocking) {
  AddCollection("T", 10000, 100, false, 100);
  auto sorted = algebra::Sort(Scan("T"), "k");
  CostVector v = Estimate(*sorted);
  // TimeFirst of a sort includes the child's full time.
  CostVector scan = Estimate(*Scan("T"));
  EXPECT_GE(v.time_first(), scan.total_time());
  EXPECT_GE(v.total_time(), v.time_first());
}

TEST_F(GenericModelTest, AggregateShrinksOutput) {
  AddCollection("T", 10000, 100, false, 100);
  auto agg = algebra::Aggregate(Scan("T"), algebra::AggFunc::kCount, "");
  CostVector v = Estimate(*agg);
  EXPECT_LT(v.count_object(), 10000);
  EXPECT_GE(v.count_object(), 1);
}

TEST_F(GenericModelTest, UnionAddsSizes) {
  AddCollection("A", 1000, 100, false, 10);
  AddCollection("B", 2000, 100, false, 10);
  auto u = algebra::Union(Scan("A"), Scan("B"));
  CostVector v = Estimate(*u);
  EXPECT_DOUBLE_EQ(v.count_object(), 3000);
  EXPECT_DOUBLE_EQ(v.total_size(), 300000);
}

TEST_F(GenericModelTest, SubmitAddsCommunication) {
  AddCollection("T", 1000, 100, false, 10);
  CostEstimator est(&registry_, &catalog_);
  auto inner = est.EstimateAt(*Scan("T"), "src");
  auto submitted = est.Estimate(*algebra::Submit("src", Scan("T")));
  ASSERT_TRUE(inner.ok());
  ASSERT_TRUE(submitted.ok());
  double comm = params_.ms_msg_latency +
                params_.ms_per_net_byte * inner->root.total_size();
  EXPECT_NEAR(submitted->root.total_time(),
              inner->root.total_time() + comm, 1e-6);
}

TEST_F(GenericModelTest, LocalScopeCheaperThanSourceForMediatorOps) {
  AddCollection("T", 10000, 100, false, 100);
  // The same logical select estimated at the mediator (local rules, no
  // I/O constants) vs at a source (default rules).
  auto plan = algebra::Select(algebra::Submit("src", Scan("T")), "k",
                              CmpOp::kEq, Value(int64_t{5}));
  CostEstimator est(&registry_, &catalog_);
  auto r = est.Estimate(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The mediator-side filter adds only MedCmpMs per object on top of the
  // submitted scan.
  auto scan_only = est.Estimate(*algebra::Submit("src", Scan("T")));
  ASSERT_TRUE(scan_only.ok());
  EXPECT_NEAR(r->root.total_time(),
              scan_only->root.total_time() + params_.ms_med_cmp * 10000,
              1e-6);
}

TEST_F(GenericModelTest, RuleTextsAreNonTrivial) {
  EXPECT_GT(GenericModelRuleText(params_).size(), 1000u);
  EXPECT_GT(LocalModelRuleText(params_).size(), 1000u);
}

}  // namespace
}  // namespace costmodel
}  // namespace disco
