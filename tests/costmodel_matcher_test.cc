#include "costmodel/matcher.h"

#include <gtest/gtest.h>

#include "costlang/compiler.h"

namespace disco {
namespace costmodel {
namespace {

using algebra::CmpOp;
using algebra::Join;
using algebra::JoinPredicate;
using algebra::Scan;
using algebra::Select;
using algebra::Sort;

costlang::CompiledRule CompileOne(const std::string& rule_text,
                                  const costlang::CompileSchema& schema) {
  auto rules = costlang::CompileRuleText(rule_text, schema);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->rules.size(), 1u);
  return std::move(rules->rules[0]);
}

costlang::CompileSchema EmployeeSchema() {
  costlang::CompileSchema schema;
  schema.AddCollection("Employee", {"salary", "name"});
  schema.AddCollection("Book", {"id", "author"});
  return schema;
}

std::optional<Bindings> Match(const costlang::CompiledRule& rule,
                              const algebra::Operator& node) {
  MatchContext ctx = MakeMatchContext(node);
  return MatchPattern(rule.pattern,
                      static_cast<int>(rule.binding_slots.size()), ctx);
}

TEST(MatcherTest, ScanLiteralMatchesByName) {
  auto rule = CompileOne("scan(Employee) { TotalTime = 1; }",
                         EmployeeSchema());
  EXPECT_TRUE(Match(rule, *Scan("Employee")).has_value());
  EXPECT_TRUE(Match(rule, *Scan("employee")).has_value());  // case-insensitive
  EXPECT_FALSE(Match(rule, *Scan("Book")).has_value());
}

TEST(MatcherTest, ScanVariableBindsProvenance) {
  auto rule = CompileOne("scan(C) { TotalTime = 1; }", EmployeeSchema());
  auto m = Match(rule, *Scan("Book"));
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->size(), 1u);
  EXPECT_EQ((*m)[0].AsString(), "Book");
}

TEST(MatcherTest, OperatorKindMustMatch) {
  auto rule = CompileOne("scan(C) { TotalTime = 1; }", EmployeeSchema());
  EXPECT_FALSE(Match(rule, *Select(Scan("Employee"), "salary", CmpOp::kEq,
                                   Value(int64_t{1})))
                   .has_value());
}

TEST(MatcherTest, SelectPredicateLevels) {
  auto node_77 =
      Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{77}));
  auto node_99 =
      Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{99}));
  auto node_name = Select(Scan("Employee"), "name", CmpOp::kEq, Value("x"));

  auto exact = CompileOne("select(Employee, salary = 77) { TotalTime = 1; }",
                          EmployeeSchema());
  EXPECT_TRUE(Match(exact, *node_77).has_value());
  EXPECT_FALSE(Match(exact, *node_99).has_value());

  auto attr_bound = CompileOne(
      "select(Employee, salary = V) { TotalTime = 1; }", EmployeeSchema());
  auto m = Match(attr_bound, *node_99);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(Match(attr_bound, *node_name).has_value());

  auto free_pred = CompileOne("select(Employee, P) { TotalTime = 1; }",
                              EmployeeSchema());
  EXPECT_TRUE(Match(free_pred, *node_77).has_value());
  EXPECT_TRUE(Match(free_pred, *node_name).has_value());
}

TEST(MatcherTest, SelectOperatorMustMatchPatternOp) {
  auto le_rule = CompileOne("select(Employee, salary <= V) { TotalTime = 1; }",
                            EmployeeSchema());
  EXPECT_TRUE(
      Match(le_rule, *Select(Scan("Employee"), "salary", CmpOp::kLe,
                             Value(int64_t{10})))
          .has_value());
  EXPECT_FALSE(
      Match(le_rule, *Select(Scan("Employee"), "salary", CmpOp::kEq,
                             Value(int64_t{10})))
          .has_value());
}

TEST(MatcherTest, ValueBindingCarriesTheConstant) {
  auto rule = CompileOne("select(Employee, salary = V) { TotalTime = V; }",
                         EmployeeSchema());
  auto m = Match(rule, *Select(Scan("Employee"), "salary", CmpOp::kEq,
                               Value(int64_t{1234})));
  ASSERT_TRUE(m.has_value());
  // Slot 0 is V (Employee is literal and has no slot).
  EXPECT_EQ((*m)[0], Value(int64_t{1234}));
}

TEST(MatcherTest, ProvenanceSeesThroughOperators) {
  // A select whose input is select(scan(Employee)) still has provenance
  // Employee (paper: select(employee, ...) matches "the result of the
  // scan").
  auto rule = CompileOne("select(Employee, P) { TotalTime = 1; }",
                         EmployeeSchema());
  auto inner =
      Select(Scan("Employee"), "salary", CmpOp::kGt, Value(int64_t{5}));
  auto outer = Select(std::move(inner), "name", CmpOp::kEq, Value("x"));
  EXPECT_TRUE(Match(rule, *outer).has_value());
}

TEST(MatcherTest, JoinPatterns) {
  auto node = Join(Scan("Employee"), Scan("Book"),
                   JoinPredicate{"salary", "id"});

  auto literal = CompileOne(
      "join(Employee, Book, salary = id) { TotalTime = 1; }",
      EmployeeSchema());
  EXPECT_TRUE(Match(literal, *node).has_value());

  auto swapped = Join(Scan("Book"), Scan("Employee"),
                      JoinPredicate{"id", "salary"});
  EXPECT_FALSE(Match(literal, *swapped).has_value());  // orientation strict

  auto free = CompileOne("join(C1, C2, A1 = A2) { TotalTime = 1; }",
                         EmployeeSchema());
  auto m = Match(free, *node);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ((*m)[0].AsString(), "Employee");
  EXPECT_EQ((*m)[1].AsString(), "Book");
  EXPECT_EQ((*m)[2].AsString(), "salary");
  EXPECT_EQ((*m)[3].AsString(), "id");
}

TEST(MatcherTest, QualifiedJoinAttrsMatchBySuffix) {
  auto rule = CompileOne("join(C1, C2, id = id) { TotalTime = 1; }",
                         EmployeeSchema());
  auto node = Join(Scan("Book"), Scan("Book2"),
                   JoinPredicate{"Book.id", "Book2.id"});
  EXPECT_TRUE(Match(rule, *node).has_value());
}

TEST(MatcherTest, RepeatedVariableRequiresEqualBindings) {
  auto rule = CompileOne("join(C, C, A1 = A2) { TotalTime = 1; }",
                         EmployeeSchema());
  auto same = Join(Scan("Book"), Scan("Book"), JoinPredicate{"id", "id"});
  EXPECT_TRUE(Match(rule, *same).has_value());
  auto different =
      Join(Scan("Employee"), Scan("Book"), JoinPredicate{"salary", "id"});
  EXPECT_FALSE(Match(rule, *different).has_value());
}

TEST(MatcherTest, FreePredicateBindsRendering) {
  auto rule = CompileOne("select(C, P) { TotalTime = 1; }", EmployeeSchema());
  auto m = Match(rule, *Select(Scan("Employee"), "salary", CmpOp::kGt,
                               Value(int64_t{7})));
  ASSERT_TRUE(m.has_value());
  // Slot 0 = C, slot 1 = P.
  EXPECT_EQ((*m)[1].AsString(), "salary > 7");
}

TEST(MatcherTest, SortAttributePattern) {
  auto rule = CompileOne("sort(C, salary) { TotalTime = 1; }",
                         EmployeeSchema());
  EXPECT_TRUE(Match(rule, *Sort(Scan("Employee"), "salary")).has_value());
  EXPECT_FALSE(Match(rule, *Sort(Scan("Employee"), "name")).has_value());
}

TEST(MatcherTest, ArityMismatchFails) {
  auto rule = CompileOne("union(C1, C2) { TotalTime = 1; }",
                         EmployeeSchema());
  EXPECT_FALSE(Match(rule, *Scan("Employee")).has_value());
  auto u = algebra::Union(Scan("Employee"), Scan("Book"));
  EXPECT_TRUE(Match(rule, *u).has_value());
}

}  // namespace
}  // namespace costmodel
}  // namespace disco
