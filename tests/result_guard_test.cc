// Result guard: schema expectations derived from the catalog, and
// in-place quarantine of malformed subanswer rows.

#include "mediator/result_guard.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "algebra/operator.h"

namespace disco {
namespace mediator {
namespace {

using algebra::AggFunc;
using algebra::CmpOp;
using algebra::Scan;

/// Catalog with one collection T(k Long, price Double, name String).
Catalog MakeCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.RegisterSource("s").ok());
  EXPECT_TRUE(catalog
                  .RegisterCollection(
                      "s",
                      CollectionSchema("T", {{"k", AttrType::kLong},
                                             {"price", AttrType::kDouble},
                                             {"name", AttrType::kString}}),
                      {})
                  .ok());
  return catalog;
}

storage::Tuple GoodRow(int64_t k) {
  return {Value(k), Value(2.5), Value("widget")};
}

sources::ExecutionResult MakeResult(int rows) {
  sources::ExecutionResult result;
  result.columns = {"k", "price", "name"};
  for (int i = 0; i < rows; ++i) result.tuples.push_back(GoodRow(i));
  result.objects_produced = rows;
  return result;
}

TEST(ResultGuardTest, ScanExpectationComesFromTheCatalog) {
  Catalog catalog = MakeCatalog();
  GuardExpectation exp = MakeGuardExpectation(*Scan("T"), catalog);
  ASSERT_TRUE(exp.columns.has_value());
  ASSERT_EQ(exp.columns->size(), 3u);
  EXPECT_EQ((*exp.columns)[0].name, "k");
  EXPECT_EQ(*(*exp.columns)[0].type, ValueType::kInt64);
  EXPECT_EQ(*(*exp.columns)[1].type, ValueType::kDouble);
  EXPECT_EQ(*(*exp.columns)[2].type, ValueType::kString);
  EXPECT_TRUE(exp.truncation_detectable);
}

TEST(ResultGuardTest, DerivedShapesFollowTheOperators) {
  Catalog catalog = MakeCatalog();
  // Project narrows and reorders.
  GuardExpectation proj = MakeGuardExpectation(
      *algebra::Project(Scan("T"), {"name", "k"}), catalog);
  ASSERT_TRUE(proj.columns.has_value());
  ASSERT_EQ(proj.columns->size(), 2u);
  EXPECT_EQ((*proj.columns)[0].name, "name");
  EXPECT_EQ(*(*proj.columns)[0].type, ValueType::kString);
  EXPECT_EQ(*(*proj.columns)[1].type, ValueType::kInt64);
  EXPECT_TRUE(proj.truncation_detectable);

  // Select-over-scan keeps the shape and stays truncation-detectable;
  // a join is neither (it may charge more objects than rows).
  GuardExpectation sel = MakeGuardExpectation(
      *algebra::Select(Scan("T"), "k", CmpOp::kGt, Value(int64_t{3})),
      catalog);
  EXPECT_TRUE(sel.truncation_detectable);
  EXPECT_EQ(sel.columns->size(), 3u);

  GuardExpectation join = MakeGuardExpectation(
      *algebra::Join(Scan("T"), Scan("T"),
                     algebra::JoinPredicate{"k", "k"}),
      catalog);
  ASSERT_TRUE(join.columns.has_value());
  EXPECT_EQ(join.columns->size(), 6u);
  EXPECT_FALSE(join.truncation_detectable);

  // Count aggregates pin the agg column to Int64; dedup is exempt from
  // truncation detection.
  GuardExpectation agg = MakeGuardExpectation(
      *algebra::Aggregate(Scan("T"), AggFunc::kCount, ""), catalog);
  ASSERT_TRUE(agg.columns.has_value());
  EXPECT_EQ(*agg.columns->back().type, ValueType::kInt64);
  EXPECT_FALSE(agg.truncation_detectable);
  EXPECT_FALSE(MakeGuardExpectation(*algebra::Dedup(Scan("T")), catalog)
                   .truncation_detectable);
}

TEST(ResultGuardTest, UnknownCollectionYieldsNoSchema) {
  Catalog catalog = MakeCatalog();
  GuardExpectation exp = MakeGuardExpectation(*Scan("Mystery"), catalog);
  EXPECT_FALSE(exp.columns.has_value());
  // Still detects truncation (a scan's declared count must match) and
  // still finiteness-checks against the answer's own arity.
  EXPECT_TRUE(exp.truncation_detectable);
}

TEST(ResultGuardTest, WellFormedBatchPassesUntouched) {
  Catalog catalog = MakeCatalog();
  GuardExpectation exp = MakeGuardExpectation(*Scan("T"), catalog);
  sources::ExecutionResult result = MakeResult(5);
  GuardReport rep = ValidateSubanswer(exp, &result);
  EXPECT_FALSE(rep.any());
  EXPECT_EQ(rep.rows_checked, 5);
  EXPECT_EQ(rep.rows_quarantined, 0);
  // Regression: a clean batch must keep its rows *with their values* --
  // not moved-from husks.
  ASSERT_EQ(result.tuples.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(result.tuples[i].size(), 3u);
    EXPECT_EQ(result.tuples[i][0].AsInt64(), i);
    EXPECT_DOUBLE_EQ(result.tuples[i][1].AsDouble(), 2.5);
    EXPECT_EQ(result.tuples[i][2].AsString(), "widget");
  }
  EXPECT_EQ(rep.Message(), "result guard: well-formed");
}

TEST(ResultGuardTest, MalformedRowsAreQuarantinedInPlace) {
  Catalog catalog = MakeCatalog();
  GuardExpectation exp = MakeGuardExpectation(*Scan("T"), catalog);
  sources::ExecutionResult result = MakeResult(2);
  result.tuples.push_back({Value(int64_t{7}), Value(2.5)});  // arity 2
  result.tuples.push_back(
      {Value("oops"), Value(2.5), Value("widget")});  // k is a string
  result.tuples.push_back(
      {Value(int64_t{8}), Value(std::numeric_limits<double>::quiet_NaN()),
       Value("widget")});  // non-finite price
  result.tuples.push_back(GoodRow(9));
  result.objects_produced = 6;

  GuardReport rep = ValidateSubanswer(exp, &result);
  EXPECT_TRUE(rep.any());
  EXPECT_EQ(rep.rows_checked, 6);
  EXPECT_EQ(rep.rows_quarantined, 3);
  EXPECT_EQ(rep.arity_mismatches, 1);
  EXPECT_EQ(rep.type_mismatches, 1);
  EXPECT_EQ(rep.non_finite_values, 1);
  EXPECT_FALSE(rep.truncated);  // all declared rows were delivered
  // Survivors keep their order and values.
  ASSERT_EQ(result.tuples.size(), 3u);
  EXPECT_EQ(result.tuples[0][0].AsInt64(), 0);
  EXPECT_EQ(result.tuples[1][0].AsInt64(), 1);
  EXPECT_EQ(result.tuples[2][0].AsInt64(), 9);
  // Message names each offense class.
  const std::string msg = rep.Message();
  EXPECT_NE(msg.find("quarantined 3/6 rows"), std::string::npos) << msg;
  EXPECT_NE(msg.find("arity 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("type 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("non-finite 1"), std::string::npos) << msg;
}

TEST(ResultGuardTest, NullsPassTypeChecksAndInfinityDoesNot) {
  Catalog catalog = MakeCatalog();
  GuardExpectation exp = MakeGuardExpectation(*Scan("T"), catalog);
  sources::ExecutionResult result;
  result.tuples.push_back({Value(int64_t{1}), Value(), Value("x")});
  result.tuples.push_back(
      {Value(int64_t{2}), Value(std::numeric_limits<double>::infinity()),
       Value("y")});
  result.objects_produced = 2;
  GuardReport rep = ValidateSubanswer(exp, &result);
  EXPECT_EQ(rep.rows_quarantined, 1);
  EXPECT_EQ(rep.non_finite_values, 1);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(result.tuples[0][0].AsInt64(), 1);  // the null row survived
}

TEST(ResultGuardTest, TruncationFlaggedOnlyWhereDetectable) {
  Catalog catalog = MakeCatalog();
  // Scan: 8 declared, 4 delivered -> truncated stream.
  GuardExpectation scan_exp = MakeGuardExpectation(*Scan("T"), catalog);
  sources::ExecutionResult result = MakeResult(4);
  result.objects_produced = 8;
  GuardReport rep = ValidateSubanswer(scan_exp, &result);
  EXPECT_TRUE(rep.truncated);
  EXPECT_TRUE(rep.any());
  EXPECT_EQ(rep.declared_rows, 8);
  EXPECT_EQ(rep.delivered_rows, 4);
  EXPECT_EQ(result.tuples.size(), 4u);  // surviving rows still flow
  EXPECT_NE(rep.Message().find("truncated stream (8 declared, 4 delivered)"),
            std::string::npos)
      << rep.Message();

  // Aggregate: charging more objects than final rows is legitimate.
  GuardExpectation agg_exp = MakeGuardExpectation(
      *algebra::Aggregate(Scan("T"), AggFunc::kCount, ""), catalog);
  sources::ExecutionResult agg;
  agg.tuples.push_back({Value(int64_t{4})});
  agg.objects_produced = 9;
  EXPECT_FALSE(ValidateSubanswer(agg_exp, &agg).truncated);
}

TEST(ResultGuardTest, NoSchemaFallsBackToTheAnswersOwnArity) {
  Catalog catalog = MakeCatalog();
  GuardExpectation exp = MakeGuardExpectation(*Scan("Mystery"), catalog);
  ASSERT_FALSE(exp.columns.has_value());
  sources::ExecutionResult result;
  result.columns = {"a", "b"};
  result.tuples.push_back({Value(int64_t{1}), Value(int64_t{2})});
  result.tuples.push_back({Value(int64_t{3})});  // short row
  result.objects_produced = 2;
  GuardReport rep = ValidateSubanswer(exp, &result);
  EXPECT_EQ(rep.arity_mismatches, 1);
  EXPECT_EQ(rep.rows_quarantined, 1);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(result.tuples[0][1].AsInt64(), 2);
}

TEST(ResultGuardTest, StatsAbsorbRollsUpReports) {
  GuardStats stats;
  GuardReport clean;
  clean.rows_checked = 5;
  stats.Absorb(clean);

  GuardReport bad;
  bad.rows_checked = 4;
  bad.rows_quarantined = 2;
  bad.arity_mismatches = 2;
  stats.Absorb(bad);

  GuardReport truncated;
  truncated.truncated = true;
  truncated.declared_rows = 10;
  truncated.delivered_rows = 5;
  stats.Absorb(truncated);

  EXPECT_EQ(stats.batches_checked, 3);
  EXPECT_EQ(stats.malformed_batches, 2);
  EXPECT_EQ(stats.rows_quarantined, 2);
  EXPECT_EQ(stats.truncated_streams, 1);
}

}  // namespace
}  // namespace mediator
}  // namespace disco
