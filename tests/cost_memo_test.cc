// Subplan cost memoization (docs/PERFORMANCE.md): the CostMemo /
// MemoDelta layering, epoch-driven invalidation against the rule
// registry, the work reduction it buys the join enumerator, and the
// guarantee that memoization never changes the chosen plan.

#include "costmodel/cost_memo.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/str_util.h"
#include "costlang/compiler.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

using costmodel::CostMemo;
using costmodel::CostVector;
using costmodel::CostVarId;
using costmodel::MemoDelta;
using costmodel::MemoKey;
using mediator::Mediator;
using mediator::MediatorOptions;

CostVector Cost(double total_ms) {
  CostVector c;
  c.Set(CostVarId::kTotalTime, total_ms);
  return c;
}

MemoKey Key(uint64_t hash, const std::string& src = "") {
  MemoKey k;
  k.plan_hash = hash;
  k.source_ctx = src;
  k.required_bits = 0x7;
  return k;
}

/// A 3-dimension star federation: enough relations that the enumerator
/// prices many candidates sharing subtrees.
std::unique_ptr<Mediator> BuildStar(MediatorOptions opts = {}) {
  auto med = std::make_unique<Mediator>(opts);
  auto facts = sources::MakeRelationalSource("facts");
  storage::Table* fact = facts->CreateTable(CollectionSchema(
      "Fact", {{"fid", AttrType::kLong},
               {"d0", AttrType::kLong},
               {"d1", AttrType::kLong},
               {"d2", AttrType::kLong}}));
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(fact->Insert({Value(int64_t{i}), Value(int64_t{i % 7}),
                              Value(int64_t{i % 11}), Value(int64_t{i % 13})})
                    .ok());
  }
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(facts),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  auto dims = sources::MakeRelationalSource("dims");
  for (int d = 0; d < 3; ++d) {
    storage::Table* dim = dims->CreateTable(CollectionSchema(
        StringPrintf("Dim%d", d), {{StringPrintf("k%d", d), AttrType::kLong},
                                   {StringPrintf("v%d", d), AttrType::kLong}}));
    for (int64_t i = 0; i < 40 + 30 * d; ++i) {
      EXPECT_TRUE(dim->Insert({Value(i), Value(i * 3)}).ok());
    }
  }
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(dims),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

constexpr char kStarQuery[] =
    "SELECT fid FROM Fact, Dim0, Dim1, Dim2 "
    "WHERE Fact.d0 = Dim0.k0 AND Fact.d1 = Dim1.k1 AND Fact.d2 = Dim2.k2";

TEST(CostMemoTest, DeltaFindsOwnEntriesAndTallies) {
  MemoDelta delta;
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.Find(Key(1)), nullptr);
  delta.Insert(Key(1), Cost(10));
  ASSERT_NE(delta.Find(Key(1)), nullptr);
  EXPECT_DOUBLE_EQ(delta.Find(Key(1))->total_time(), 10);
  // Keys differ on every component.
  EXPECT_EQ(delta.Find(Key(2)), nullptr);
  EXPECT_EQ(delta.Find(Key(1, "src")), nullptr);
  MemoKey other_bits = Key(1);
  other_bits.required_bits = 0x1;
  EXPECT_EQ(delta.Find(other_bits), nullptr);
}

TEST(CostMemoTest, AbsorbMergesFirstWinsAndAccumulatesTallies) {
  CostMemo memo;
  memo.SyncEpoch(1);
  MemoDelta a;
  a.Insert(Key(1), Cost(10));
  a.hits = 2;
  a.misses = 3;
  MemoDelta b;
  b.Insert(Key(1), Cost(99));  // same key, later slot: must lose
  b.Insert(Key(2), Cost(20));
  b.hits = 1;
  b.misses = 1;
  memo.Absorb(std::move(a));
  memo.Absorb(std::move(b));
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_DOUBLE_EQ(memo.Find(Key(1))->total_time(), 10);  // first wins
  EXPECT_DOUBLE_EQ(memo.Find(Key(2))->total_time(), 20);
  EXPECT_EQ(memo.hits(), 3);
  EXPECT_EQ(memo.misses(), 4);
  // Absorb consumed the deltas.
  EXPECT_TRUE(b.empty());
}

TEST(CostMemoTest, SyncEpochDropsEntriesAndCountsInvalidations) {
  CostMemo memo;
  memo.SyncEpoch(1);  // first sync of an empty memo: not an invalidation
  EXPECT_EQ(memo.invalidations(), 0);
  MemoDelta d;
  d.Insert(Key(1), Cost(10));
  memo.Absorb(std::move(d));
  memo.SyncEpoch(1);  // same epoch: nothing happens
  EXPECT_EQ(memo.size(), 1u);
  memo.SyncEpoch(2);  // epoch moved: drop everything, count once
  EXPECT_EQ(memo.size(), 0u);
  EXPECT_EQ(memo.invalidations(), 1);
  EXPECT_EQ(memo.epoch(), 2);
  memo.SyncEpoch(3);  // moved again but memo was empty: no invalidation
  EXPECT_EQ(memo.invalidations(), 1);
}

TEST(CostMemoTest, RegistryEpochMovesOnEveryRuleOrQueryScopeChange) {
  auto med = BuildStar();
  costmodel::RuleRegistry* reg = med->registry();
  const int64_t before = reg->epoch();
  auto plan = algebra::Scan("Fact");
  reg->AddQueryCost("facts", *plan, Cost(42));
  EXPECT_GT(reg->epoch(), before);
  const int64_t after_query_cost = reg->epoch();

  costlang::CompileSchema schema;
  schema.AddCollection("Fact", {"fid"});
  auto rules =
      costlang::CompileRuleText("scan(C) { TotalTime = 1; }", schema);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_TRUE(reg->AddWrapperRules("facts", std::move(*rules)).ok());
  const int64_t after_add = reg->epoch();
  EXPECT_GT(after_add, after_query_cost);
  EXPECT_GT(reg->RemoveWrapperRules("facts"), 0);
  EXPECT_GT(reg->epoch(), after_add);
}

TEST(CostMemoTest, AddQueryCostDoesNotRebuildTheCandidateIndex) {
  // Satellite guarantee: query-scope entries live in their own map, so
  // recording one must not invalidate (and later rebuild) the candidate
  // index. Observable as address stability of the served lists.
  auto med = BuildStar();
  costmodel::RuleRegistry* reg = med->registry();
  const auto& before = reg->Candidates("facts", algebra::OpKind::kScan);
  auto plan = algebra::Scan("Fact");
  reg->AddQueryCost("facts", *plan, Cost(42));
  const auto& after = reg->Candidates("facts", algebra::OpKind::kScan);
  EXPECT_EQ(&before, &after);
  ASSERT_NE(reg->QueryCost("facts", *plan), nullptr);
  EXPECT_DOUBLE_EQ(reg->QueryCost("facts", *plan)->total_time(), 42);
}

TEST(CostMemoTest, MemoReducesEnumerationWorkWithoutChangingTheWinner) {
  auto med = BuildStar();
  costmodel::CostEstimator estimator(med->registry(), &med->catalog());
  optimizer::Optimizer optimizer(&estimator, &med->capabilities());
  auto bound = med->Analyze(kStarQuery);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  optimizer::OptimizerOptions off;
  off.use_memo = false;
  auto plain = optimizer.Optimize(*bound, off);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->stats.memo_hits, 0);
  EXPECT_EQ(plain->stats.memo_misses, 0);

  optimizer::OptimizerOptions on;  // run-local memo by default
  auto memoized = optimizer.Optimize(*bound, on);
  ASSERT_TRUE(memoized.ok());
  // Shared subtrees hit, shrinking the formula/match workload.
  EXPECT_GT(memoized->stats.memo_hits, 0);
  EXPECT_LT(memoized->stats.formulas_evaluated,
            plain->stats.formulas_evaluated);
  EXPECT_LT(memoized->stats.match_attempts, plain->stats.match_attempts);
  // Never at the price of a different answer.
  EXPECT_EQ(memoized->plan->ToString(), plain->plan->ToString());
  EXPECT_DOUBLE_EQ(memoized->estimated_ms, plain->estimated_ms);
}

TEST(CostMemoTest, SharedMemoCarriesAcrossQueriesUntilTheEpochMoves) {
  auto med = BuildStar();
  costmodel::CostEstimator estimator(med->registry(), &med->catalog());
  optimizer::Optimizer optimizer(&estimator, &med->capabilities());
  auto bound = med->Analyze(kStarQuery);
  ASSERT_TRUE(bound.ok());

  CostMemo memo;
  optimizer::OptimizerOptions opts;
  opts.memo = &memo;
  auto first = optimizer.Optimize(*bound, opts);
  ASSERT_TRUE(first.ok());
  const int64_t warm_size = static_cast<int64_t>(memo.size());
  EXPECT_GT(warm_size, 0);

  // Same epoch: the second enumeration answers candidates straight from
  // the warm entries and does strictly less rule work.
  auto second = optimizer.Optimize(*bound, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->stats.memo_hits, 0);
  EXPECT_LT(second->stats.formulas_evaluated,
            first->stats.formulas_evaluated);
  EXPECT_EQ(second->plan->ToString(), first->plan->ToString());

  // A query-scope record moves the epoch: the next enumeration starts
  // from an empty memo (counted as one invalidation).
  auto subplan = algebra::Scan("Fact");
  med->registry()->AddQueryCost(
      "facts", *subplan,
      costmodel::CostVector::Full(500, 500 * 32, 32, 1, 0.01, 42));
  auto third = optimizer.Optimize(*bound, opts);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(memo.invalidations(), 1);
  EXPECT_EQ(memo.epoch(), med->registry()->epoch());
}

TEST(CostMemoTest, MediatorSurfacesMemoCounters) {
  MediatorOptions opts;
  opts.plan_cache_capacity = 0;  // force enumeration on every query
  auto med = BuildStar(opts);
  ASSERT_TRUE(med->Query(kStarQuery).ok());
  EXPECT_GT(med->cost_memo().misses(), 0);
  EXPECT_GT(med->cost_memo().hits(), 0);

  // History feedback bumps the registry epoch after the first query, so
  // the second enumeration invalidates the memo rather than reusing
  // stale costs.
  ASSERT_TRUE(med->Query(kStarQuery).ok());
  EXPECT_GE(med->cost_memo().invalidations(), 1);

  const mediator::MonitorSnapshot snap = med->MonitorReport();
  EXPECT_EQ(snap.cost_memo_hits, med->cost_memo().hits());
  EXPECT_EQ(snap.cost_memo_misses, med->cost_memo().misses());
  EXPECT_NE(snap.ToText().find("cost memo:"), std::string::npos);
  const metrics::RegistrySnapshot m = med->metrics()->TakeSnapshot();
  EXPECT_EQ(m.counters.at("disco.costmemo.hits"), med->cost_memo().hits());
  EXPECT_EQ(m.counters.at("disco.costmemo.misses"),
            med->cost_memo().misses());
}

}  // namespace
}  // namespace disco
