#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "catalog/statistics.h"

namespace disco {
namespace {

CollectionSchema EmployeeSchema() {
  return CollectionSchema("Employee", {{"salary", AttrType::kLong},
                                       {"name", AttrType::kString}});
}

TEST(SchemaTest, AttributeLookup) {
  CollectionSchema schema = EmployeeSchema();
  EXPECT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(schema.AttributeIndex("salary"), 0);
  EXPECT_EQ(schema.AttributeIndex("name"), 1);
  EXPECT_FALSE(schema.AttributeIndex("missing").has_value());
  EXPECT_TRUE(schema.HasAttribute("salary"));
  auto attr = schema.Attribute("name");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->type, AttrType::kString);
  EXPECT_TRUE(schema.Attribute("missing").status().IsNotFound());
}

TEST(SchemaTest, AttrTypeNames) {
  EXPECT_EQ(*AttrTypeFromName("Long"), AttrType::kLong);
  EXPECT_EQ(*AttrTypeFromName("short"), AttrType::kLong);
  EXPECT_EQ(*AttrTypeFromName("DOUBLE"), AttrType::kDouble);
  EXPECT_EQ(*AttrTypeFromName("Float"), AttrType::kDouble);
  EXPECT_EQ(*AttrTypeFromName("string"), AttrType::kString);
  EXPECT_EQ(*AttrTypeFromName("Boolean"), AttrType::kBool);
  EXPECT_FALSE(AttrTypeFromName("blob").ok());
}

TEST(SchemaTest, AttrTypeToValueType) {
  EXPECT_EQ(AttrTypeToValueType(AttrType::kLong), ValueType::kInt64);
  EXPECT_EQ(AttrTypeToValueType(AttrType::kDouble), ValueType::kDouble);
  EXPECT_EQ(AttrTypeToValueType(AttrType::kString), ValueType::kString);
  EXPECT_EQ(AttrTypeToValueType(AttrType::kBool), ValueType::kBool);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("src").ok());
  CollectionStats stats;
  stats.extent = ExtentStats{10, 1000, 100};
  ASSERT_TRUE(catalog.RegisterCollection("src", EmployeeSchema(), stats).ok());

  EXPECT_TRUE(catalog.HasSource("src"));
  EXPECT_FALSE(catalog.HasSource("other"));
  EXPECT_TRUE(catalog.HasCollection("Employee"));

  auto entry = catalog.Collection("Employee");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->source, "src");
  EXPECT_EQ(entry->stats.extent.count_object, 10);
  EXPECT_EQ(*catalog.SourceOf("Employee"), "src");
}

TEST(CatalogTest, DuplicateSourceRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("src").ok());
  EXPECT_TRUE(catalog.RegisterSource("src").IsAlreadyExists());
}

TEST(CatalogTest, DuplicateCollectionRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("a").ok());
  ASSERT_TRUE(catalog.RegisterSource("b").ok());
  ASSERT_TRUE(
      catalog.RegisterCollection("a", EmployeeSchema(), {}).ok());
  EXPECT_TRUE(catalog.RegisterCollection("b", EmployeeSchema(), {})
                  .IsAlreadyExists());
}

TEST(CatalogTest, UnknownSourceRejected) {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.RegisterCollection("ghost", EmployeeSchema(), {}).IsNotFound());
}

TEST(CatalogTest, UpdateStatsReplaces) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("src").ok());
  CollectionStats stats;
  stats.extent = ExtentStats{10, 1000, 100};
  ASSERT_TRUE(catalog.RegisterCollection("src", EmployeeSchema(), stats).ok());

  CollectionStats fresh;
  fresh.extent = ExtentStats{99, 9900, 100};
  ASSERT_TRUE(catalog.UpdateStats("Employee", fresh).ok());
  EXPECT_EQ(catalog.Collection("Employee")->stats.extent.count_object, 99);
  EXPECT_TRUE(catalog.UpdateStats("Ghost", fresh).IsNotFound());
}

TEST(CatalogTest, CollectionsOfSource) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("a").ok());
  ASSERT_TRUE(catalog.RegisterSource("b").ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "a", CollectionSchema("X", {{"i", AttrType::kLong}}), {})
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "a", CollectionSchema("Y", {{"i", AttrType::kLong}}), {})
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "b", CollectionSchema("Z", {{"i", AttrType::kLong}}), {})
                  .ok());
  EXPECT_EQ(catalog.CollectionsOf("a").size(), 2u);
  EXPECT_EQ(catalog.CollectionsOf("b").size(), 1u);
  EXPECT_EQ(catalog.Collections().size(), 3u);
  EXPECT_EQ(catalog.Sources().size(), 2u);
}

TEST(CatalogTest, DeclareEquivalentRequiresIdenticalSchemas) {
  Catalog catalog;
  ASSERT_TRUE(catalog.RegisterSource("a").ok());
  ASSERT_TRUE(catalog.RegisterSource("b").ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "a", CollectionSchema("X", {{"i", AttrType::kLong}}), {})
                  .ok());
  // Attribute name casing differs but matches; types match: accepted.
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "b", CollectionSchema("Y", {{"I", AttrType::kLong}}), {})
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterCollection(
                      "b", CollectionSchema("Z", {{"i", AttrType::kString}}),
                      {})
                  .ok());
  EXPECT_TRUE(catalog.DeclareEquivalent("X", "Y").ok());
  EXPECT_EQ(catalog.EquivalentsOf("X"), std::vector<std::string>{"Y"});
  EXPECT_EQ(catalog.EquivalentsOf("Y"), std::vector<std::string>{"X"});
  // Type mismatch and unknown collections are rejected.
  EXPECT_TRUE(catalog.DeclareEquivalent("X", "Z").IsInvalidArgument());
  EXPECT_TRUE(catalog.DeclareEquivalent("X", "Ghost").IsNotFound());
  EXPECT_TRUE(catalog.EquivalentsOf("Z").empty());
}

TEST(CatalogTest, EquivalenceIsTransitiveAndSurvivesSourceRemoval) {
  Catalog catalog;
  for (const char* s : {"a", "b", "c"}) {
    ASSERT_TRUE(catalog.RegisterSource(s).ok());
  }
  const char* names[] = {"X", "Y", "Z"};
  const char* sources[] = {"a", "b", "c"};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(catalog
                    .RegisterCollection(sources[i],
                                        CollectionSchema(
                                            names[i], {{"i", AttrType::kLong}}),
                                        {})
                    .ok());
  }
  ASSERT_TRUE(catalog.DeclareEquivalent("X", "Y").ok());
  ASSERT_TRUE(catalog.DeclareEquivalent("Y", "Z").ok());
  EXPECT_EQ(catalog.EquivalentsOf("X").size(), 2u);
  EXPECT_EQ(catalog.EquivalentsOf("Z").size(), 2u);
  // Removing a source also removes its collections from their classes.
  ASSERT_TRUE(catalog.RemoveSource("b").ok());
  EXPECT_EQ(catalog.EquivalentsOf("X"), std::vector<std::string>{"Z"});
}

TEST(StatisticsTest, CollectionStatsAttributeLookup) {
  CollectionStats stats;
  AttributeStats a;
  a.indexed = true;
  a.count_distinct = 5;
  stats.attributes["salary"] = a;
  EXPECT_TRUE(stats.HasAttribute("salary"));
  EXPECT_FALSE(stats.HasAttribute("name"));
  ASSERT_TRUE(stats.Attribute("salary").ok());
  EXPECT_TRUE(stats.Attribute("name").status().IsNotFound());
}

TEST(StatisticsTest, ToStringMentionsFields) {
  ExtentStats e{70000, 4096000, 56};
  EXPECT_NE(e.ToString().find("70000"), std::string::npos);
  AttributeStats a;
  a.indexed = true;
  a.min = Value(int64_t{0});
  a.max = Value(int64_t{9});
  EXPECT_NE(a.ToString().find("Indexed=true"), std::string::npos);
}

}  // namespace
}  // namespace disco
