#include "bench007/oo7.h"

#include <set>

#include <gtest/gtest.h>

namespace disco {
namespace bench007 {
namespace {

OO7Config SmallConfig() {
  OO7Config config;
  config.num_atomic_parts = 7000;
  config.num_composite_parts = 100;
  config.connections_per_atomic = 2;
  config.num_documents = 100;
  return config;
}

TEST(OO7Test, TablesAndCounts) {
  auto src = BuildOO7Source(SmallConfig());
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  ASSERT_NE((*src)->table("AtomicPart"), nullptr);
  ASSERT_NE((*src)->table("CompositePart"), nullptr);
  ASSERT_NE((*src)->table("Connection"), nullptr);
  ASSERT_NE((*src)->table("Document"), nullptr);
  EXPECT_EQ((*src)->table("AtomicPart")->heap().num_records(), 7000);
  EXPECT_EQ((*src)->table("CompositePart")->heap().num_records(), 100);
  EXPECT_EQ((*src)->table("Connection")->heap().num_records(), 14000);
  EXPECT_EQ((*src)->table("Document")->heap().num_records(), 100);
}

TEST(OO7Test, PaperPageLayout) {
  // 70 objects per page: 7000 objects -> exactly 100 pages.
  auto src = BuildOO7Source(SmallConfig());
  ASSERT_TRUE(src.ok());
  EXPECT_EQ((*src)->table("AtomicPart")->heap().num_pages(), 100);
}

TEST(OO7Test, IdsAreAPermutation) {
  auto src = BuildOO7Source(SmallConfig());
  ASSERT_TRUE(src.ok());
  std::set<int64_t> seen;
  ASSERT_TRUE((*src)
                  ->table("AtomicPart")
                  ->Scan([&](const storage::RID&, const storage::Tuple& t) {
                    seen.insert(t[0].AsInt64());
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 7000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 6999);
}

TEST(OO7Test, UnclusteredVsClusteredLayout) {
  OO7Config unclustered = SmallConfig();
  OO7Config clustered = SmallConfig();
  clustered.clustered_ids = true;

  auto check_first_page_sorted = [](sources::DataSource* src) {
    std::vector<int64_t> first_page;
    EXPECT_TRUE(src->table("AtomicPart")
                    ->Scan([&](const storage::RID& rid,
                               const storage::Tuple& t) {
                      if (rid.page > 0) return false;
                      first_page.push_back(t[0].AsInt64());
                      return true;
                    })
                    .ok());
    return std::is_sorted(first_page.begin(), first_page.end());
  };

  auto u = BuildOO7Source(unclustered);
  auto c = BuildOO7Source(clustered);
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(check_first_page_sorted(u->get()));
  EXPECT_TRUE(check_first_page_sorted(c->get()));

  auto stats = (*c)->table("AtomicPart")->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->Attribute("id")->clustered);
  stats = (*u)->table("AtomicPart")->ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->Attribute("id")->clustered);
}

TEST(OO7Test, IndexesExist) {
  auto src = BuildOO7Source(SmallConfig());
  ASSERT_TRUE(src.ok());
  EXPECT_TRUE((*src)->table("AtomicPart")->HasIndex("id"));
  EXPECT_TRUE((*src)->table("AtomicPart")->HasIndex("docId"));
  EXPECT_TRUE((*src)->table("Connection")->HasIndex("fromId"));
}

TEST(OO7Test, GenerationIsDeterministic) {
  auto a = BuildOO7Source(SmallConfig());
  auto b = BuildOO7Source(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<int64_t> ids_a, ids_b;
  auto collect = [](sources::DataSource* src, std::vector<int64_t>* out) {
    EXPECT_TRUE(src->table("AtomicPart")
                    ->Scan([&](const storage::RID&, const storage::Tuple& t) {
                      out->push_back(t[0].AsInt64());
                      return out->size() < 500;
                    })
                    .ok());
  };
  collect(a->get(), &ids_a);
  collect(b->get(), &ids_b);
  EXPECT_EQ(ids_a, ids_b);
}

TEST(OO7Test, CleanClockAndPoolAfterBuild) {
  auto src = BuildOO7Source(SmallConfig());
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ((*src)->env()->clock.now_ms(), 0);
  EXPECT_EQ((*src)->env()->pool.resident(), 0u);
}

TEST(OO7Test, YaoRuleTextUsesPaperConstants) {
  std::string text = Oo7YaoRuleText();
  EXPECT_NE(text.find("define IO = 25"), std::string::npos);
  EXPECT_NE(text.find("define Output = 9"), std::string::npos);
  EXPECT_NE(text.find("exp("), std::string::npos);
}

}  // namespace
}  // namespace bench007
}  // namespace disco
