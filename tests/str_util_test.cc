#include "common/str_util.h"

#include <gtest/gtest.h>

namespace disco {
namespace {

TEST(StrUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"only"}, "-"), "only");
}

TEST(StrUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("AbC123_x"), "abc123_x");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Employee", "employee"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("nospace"), "nospace");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StrUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.005), "1.00");
  EXPECT_EQ(StringPrintf("empty"), "empty");
  // Long output forces the resize path.
  std::string big = StringPrintf("%0200d", 1);
  EXPECT_EQ(big.size(), 200u);
}

TEST(StrUtilTest, HashCombineSpreads) {
  size_t a = HashCombine(1, 2);
  size_t b = HashCombine(2, 1);
  EXPECT_NE(a, b);  // order matters
}

}  // namespace
}  // namespace disco
