#include "common/value.h"

#include <gtest/gtest.h>

namespace disco {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{-9}).AsInt64(), -9);
  EXPECT_DOUBLE_EQ(Value(2.25).AsDouble(), 2.25);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  // Int64 widens through AsDouble.
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
}

TEST(ValueTest, NumericCompareAcrossTags) {
  Value i(int64_t{3});
  Value d(3.0);
  Value bigger(3.5);
  EXPECT_EQ(*i.Compare(d), 0);
  EXPECT_LT(*i.Compare(bigger), 0);
  EXPECT_GT(*bigger.Compare(i), 0);
  EXPECT_TRUE(i == d);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(*Value("Adiba").Compare(Value("Valduriez")), 0);
  EXPECT_EQ(*Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, BoolCompare) {
  EXPECT_LT(*Value(false).Compare(Value(true)), 0);
  EXPECT_EQ(*Value(true).Compare(Value(true)), 0);
}

TEST(ValueTest, NullComparesBelowEverything) {
  EXPECT_LT(*Value().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(*Value().Compare(Value("")), 0);
  EXPECT_EQ(*Value().Compare(Value()), 0);
  EXPECT_GT(*Value(int64_t{-100}).Compare(Value()), 0);
}

TEST(ValueTest, IncomparableTypesError) {
  EXPECT_FALSE(Value("x").Compare(Value(int64_t{1})).ok());
  EXPECT_FALSE(Value(true).Compare(Value("x")).ok());
  // operator== treats incomparable as unequal (not an error).
  EXPECT_FALSE(Value("x") == Value(int64_t{1}));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(3.0).ToString(), "3");  // integral doubles render compact
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
}

struct CompareCase {
  Value lhs;
  Value rhs;
  int expected;  // sign
};

class ValueCompareTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ValueCompareTest, TotalOrderWithinType) {
  const CompareCase& c = GetParam();
  Result<int> r = c.lhs.Compare(c.rhs);
  ASSERT_TRUE(r.ok());
  if (c.expected < 0) {
    EXPECT_LT(*r, 0);
  } else if (c.expected == 0) {
    EXPECT_EQ(*r, 0);
  } else {
    EXPECT_GT(*r, 0);
  }
  // Antisymmetry.
  Result<int> rev = c.rhs.Compare(c.lhs);
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ((*r > 0) - (*r < 0), -((*rev > 0) - (*rev < 0)));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value(int64_t{1}), Value(int64_t{2}), -1},
        CompareCase{Value(int64_t{2}), Value(int64_t{2}), 0},
        CompareCase{Value(int64_t{3}), Value(int64_t{2}), 1},
        CompareCase{Value(-1.5), Value(1.5), -1},
        CompareCase{Value(int64_t{2}), Value(1.9), 1},
        CompareCase{Value(""), Value("a"), -1},
        CompareCase{Value("zz"), Value("za"), 1},
        CompareCase{Value(false), Value(true), -1},
        CompareCase{Value(), Value(int64_t{0}), -1}));

}  // namespace
}  // namespace disco
