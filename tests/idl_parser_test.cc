#include "idl/idl_parser.h"

#include <gtest/gtest.h>

namespace disco {
namespace idl {
namespace {

TEST(IdlParserTest, Figure3Interface) {
  auto r = ParseInterface(
      "interface Employee {\n"
      "  attribute Long salary;\n"
      "  attribute String Name;\n"
      "  short age();\n"
      "}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->schema.name(), "Employee");
  ASSERT_EQ(r->schema.num_attributes(), 2);
  EXPECT_EQ(r->schema.attributes()[0].name, "salary");
  EXPECT_EQ(r->schema.attributes()[0].type, AttrType::kLong);
  EXPECT_EQ(r->schema.attributes()[1].name, "Name");
  EXPECT_EQ(r->schema.attributes()[1].type, AttrType::kString);
  ASSERT_EQ(r->schema.operations().size(), 1u);
  EXPECT_EQ(r->schema.operations()[0].name, "age");
  EXPECT_EQ(r->schema.operations()[0].return_type, "short");
  EXPECT_FALSE(r->declares_extent_stats);
  EXPECT_FALSE(r->declares_attribute_stats);
}

TEST(IdlParserTest, Figure4CardinalityMethods) {
  auto r = ParseInterface(
      "interface Employee {\n"
      "  attribute Long salary;\n"
      "  cardinality extent(out long CountObject, out long TotalSize,\n"
      "                     out long ObjectSize);\n"
      "  cardinality attribute(in String AttributeName, out Boolean Indexed,\n"
      "                        out Long CountDistinct, out Constant Min,\n"
      "                        out Constant Max);\n"
      "}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->declares_extent_stats);
  EXPECT_TRUE(r->declares_attribute_stats);
}

TEST(IdlParserTest, OperationsWithParameters) {
  auto r = ParseInterface(
      "interface Account {\n"
      "  attribute Double balance;\n"
      "  Double withdraw(in Double amount, in String reason);\n"
      "}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->schema.operations().size(), 1u);
  EXPECT_EQ(r->schema.operations()[0].parameter_types.size(), 2u);
}

TEST(IdlParserTest, ModuleWithSeveralInterfaces) {
  auto r = ParseModule(
      "interface A { attribute Long x; };\n"
      "interface B { attribute String y; }\n"
      "interface C { attribute Boolean z; }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);
}

TEST(IdlParserTest, CommentsAreSkipped) {
  auto r = ParseInterface(
      "// leading comment\n"
      "interface T { /* inline */ attribute Long a; // trailing\n }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->schema.num_attributes(), 1);
}

TEST(IdlParserTest, ErrorsAreParseErrors) {
  EXPECT_TRUE(ParseInterface("interface { }").status().IsParseError());
  EXPECT_TRUE(ParseInterface("interface T { attribute Blob x; }")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseInterface("interface T { attribute Long x }")  // missing ;
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseInterface("interface T { attribute Long x;")  // missing }
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseInterface("").status().IsParseError());  // not exactly one
}

TEST(IdlParserTest, BadCardinalitySignatureRejected) {
  EXPECT_TRUE(ParseInterface(
                  "interface T {\n"
                  "  cardinality extent(out long Wrong, out long TotalSize,\n"
                  "                     out long ObjectSize);\n"
                  "}")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseInterface(
                  "interface T {\n"
                  "  cardinality extent(out long CountObject);\n"  // too few
                  "}")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseInterface("interface T { cardinality bogus(); }")
                  .status()
                  .IsParseError());
}

TEST(IdlParserTest, UnterminatedCommentRejected) {
  EXPECT_TRUE(
      ParseInterface("interface T { /* attribute Long a; }").status()
          .IsParseError());
}

TEST(IdlParserTest, ErrorsCarryLineNumbers) {
  Status s = ParseInterface(
                 "interface T {\n"
                 "  attribute Long a;\n"
                 "  attribute Nope b;\n"
                 "}")
                 .status();
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.message();
}

}  // namespace
}  // namespace idl
}  // namespace disco
