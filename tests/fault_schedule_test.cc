// FaultSchedule / ScheduledFaultWrapper: correlated fault domains,
// timed windows on the schedule clock, and deterministic
// malformed-response corruption.

#include "wrapper/fault_schedule.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "common/value.h"

namespace disco {
namespace wrapper {
namespace {

/// Inner wrapper answering a fixed, well-formed batch of `rows` rows
/// {Int64 k, String name}; Execute never fails on its own.
class StubWrapper : public Wrapper {
 public:
  explicit StubWrapper(std::string name, int rows = 8)
      : name_(std::move(name)), rows_(rows) {}

  const std::string& name() const override { return name_; }
  std::string ExportInterfaces() const override { return ""; }
  Result<CollectionStats> ExportStatistics(
      const std::string&) const override {
    return CollectionStats{};
  }
  std::string ExportCostRules() const override { return ""; }
  optimizer::SourceCapabilities ExportCapabilities() const override {
    return optimizer::SourceCapabilities::All();
  }
  Result<sources::ExecutionResult> Execute(
      const algebra::Operator&) override {
    sources::ExecutionResult result;
    result.columns = {"k", "name"};
    for (int i = 0; i < rows_; ++i) {
      result.tuples.push_back(
          {Value(static_cast<int64_t>(i)), Value("row")});
    }
    result.total_ms = 10;
    result.first_tuple_ms = 5;
    result.objects_produced = rows_;
    return result;
  }

 private:
  std::string name_;
  int rows_;
};

ScheduledFaultWrapper MakeWrapped(const FaultSchedule* schedule,
                                  const std::string& name = "s0",
                                  int rows = 8) {
  return ScheduledFaultWrapper(std::make_unique<StubWrapper>(name, rows),
                               schedule);
}

FaultWindow Window(const std::string& domain, double start, double end,
                   FaultEffect effect) {
  FaultWindow w;
  w.domain = domain;
  w.start_ms = start;
  w.end_ms = end;
  w.effect = effect;
  return w;
}

TEST(FaultScheduleTest, DomainMembershipIsCaseInsensitive) {
  FaultSchedule schedule;
  schedule.DefineDomain("rack-a", {"Alpha", "BETA"});
  EXPECT_TRUE(schedule.InDomain("rack-a", "alpha"));
  EXPECT_TRUE(schedule.InDomain("rack-a", "ALPHA"));
  EXPECT_TRUE(schedule.InDomain("rack-a", "beta"));
  EXPECT_FALSE(schedule.InDomain("rack-a", "gamma"));
  EXPECT_FALSE(schedule.InDomain("rack-b", "alpha"));  // unknown domain
  // Redefining a domain replaces the member list.
  schedule.DefineDomain("rack-a", {"gamma"});
  EXPECT_FALSE(schedule.InDomain("rack-a", "alpha"));
  EXPECT_TRUE(schedule.InDomain("rack-a", "gamma"));
}

TEST(FaultScheduleTest, WindowsAreHalfOpenOnTheScheduleClock) {
  FaultSchedule schedule;
  schedule.DefineDomain("d", {"s0"});
  schedule.AddWindow(Window("d", 100, 200, FaultEffect::kOutage));

  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto probe = [&](double now) {
    schedule.AdvanceTo(now);
    return w.Execute(*algebra::Scan("T")).ok();
  };
  EXPECT_TRUE(probe(99));     // before the window
  EXPECT_FALSE(probe(100));   // inclusive start
  EXPECT_FALSE(probe(199.5));
  EXPECT_TRUE(probe(200));    // exclusive end
  EXPECT_EQ(w.calls(), 4);
  EXPECT_EQ(w.injected_outages(), 2);
}

TEST(FaultScheduleTest, OutageSharesFateAcrossTheDomain) {
  FaultSchedule schedule;
  schedule.DefineDomain("rack", {"s0", "s1"});
  FaultWindow window = Window("rack", 0, 100, FaultEffect::kOutage);
  window.message = "rack power lost";
  schedule.AddWindow(window);
  schedule.AdvanceTo(50);

  ScheduledFaultWrapper s0 = MakeWrapped(&schedule, "s0");
  ScheduledFaultWrapper s1 = MakeWrapped(&schedule, "s1");
  ScheduledFaultWrapper s2 = MakeWrapped(&schedule, "s2");  // off the rack

  auto r0 = s0.Execute(*algebra::Scan("T"));
  ASSERT_FALSE(r0.ok());
  EXPECT_TRUE(r0.status().IsUnavailable());
  EXPECT_NE(r0.status().message().find("rack power lost"),
            std::string::npos);
  EXPECT_NE(r0.status().message().find("rack"), std::string::npos);
  EXPECT_FALSE(s1.Execute(*algebra::Scan("T")).ok());
  EXPECT_TRUE(s2.Execute(*algebra::Scan("T")).ok());
  EXPECT_EQ(s0.injected_outages(), 1);
  EXPECT_EQ(s2.injected_outages(), 0);
}

TEST(FaultScheduleTest, FlapIsASquareWaveOverThePeriod) {
  FaultSchedule schedule;
  schedule.DefineDomain("d", {"s0"});
  FaultWindow window = Window("d", 0, 1000, FaultEffect::kFlap);
  window.flap_period_ms = 100;
  window.flap_down_fraction = 0.5;
  schedule.AddWindow(window);

  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto up = [&](double now) {
    schedule.AdvanceTo(now);
    return w.Execute(*algebra::Scan("T")).ok();
  };
  // Down for the leading half of every period, up for the rest.
  EXPECT_FALSE(up(10));
  EXPECT_FALSE(up(49));
  EXPECT_TRUE(up(50));
  EXPECT_TRUE(up(99));
  EXPECT_FALSE(up(110));  // next period, down again
  EXPECT_TRUE(up(160));
  EXPECT_TRUE(up(1010));  // window over: always up
}

TEST(FaultScheduleTest, LatencyStormScalesTimeNotTuples) {
  FaultSchedule schedule;
  schedule.DefineDomain("wan", {"s0"});
  FaultWindow window = Window("wan", 0, 100, FaultEffect::kLatencyStorm);
  window.storm_factor = 3;
  window.storm_added_ms = 7;
  schedule.AddWindow(window);
  schedule.AdvanceTo(10);

  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto r = w.Execute(*algebra::Scan("T"));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_ms, 10 * 3 + 7);
  EXPECT_DOUBLE_EQ(r->first_tuple_ms, 5 * 3 + 7);
  EXPECT_EQ(r->tuples.size(), 8u);  // payload untouched
  EXPECT_EQ(w.malformed_responses(), 0);
}

TEST(FaultScheduleTest, DisabledScheduleInjectsNothing) {
  FaultSchedule schedule;
  schedule.DefineDomain("d", {"s0"});
  schedule.AddWindow(Window("d", 0, 100, FaultEffect::kOutage));
  schedule.AdvanceTo(50);
  ASSERT_EQ(schedule.ActiveWindows("s0").size(), 1u);

  schedule.set_enabled(false);  // the oracle arm's master switch
  EXPECT_TRUE(schedule.ActiveWindows("s0").empty());
  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto r = w.Execute(*algebra::Scan("T"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 8u);
  EXPECT_EQ(w.injected_outages(), 0);

  schedule.set_enabled(true);
  EXPECT_FALSE(w.Execute(*algebra::Scan("T")).ok());
}

TEST(FaultScheduleTest, ArityCorruptionBreaksEveryRow) {
  FaultSchedule schedule;
  schedule.DefineDomain("liar", {"s0"});
  FaultWindow window = Window("liar", 0, 100, FaultEffect::kMalform);
  window.malform_modes = kMalformArity;
  window.malform_row_probability = 1.0;
  schedule.AddWindow(window);
  schedule.AdvanceTo(10);

  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto r = w.Execute(*algebra::Scan("T"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 8u);  // arity mode never drops rows
  for (const storage::Tuple& row : r->tuples) {
    EXPECT_NE(row.size(), 2u);  // every row gained or lost a column
  }
  EXPECT_EQ(w.malformed_responses(), 1);
  EXPECT_EQ(r->objects_produced, 8);
}

TEST(FaultScheduleTest, NonFiniteCorruptionPlantsNaNOrInf) {
  FaultSchedule schedule;
  schedule.DefineDomain("liar", {"s0"});
  FaultWindow window = Window("liar", 0, 100, FaultEffect::kMalform);
  window.malform_modes = kMalformNonFinite;
  window.malform_row_probability = 1.0;
  schedule.AddWindow(window);
  schedule.AdvanceTo(10);

  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto r = w.Execute(*algebra::Scan("T"));
  ASSERT_TRUE(r.ok());
  for (const storage::Tuple& row : r->tuples) {
    ASSERT_EQ(row.size(), 2u);
    bool poisoned = false;
    for (const Value& v : row) {
      if (v.is_double() && !std::isfinite(v.AsDouble())) poisoned = true;
    }
    EXPECT_TRUE(poisoned);
  }
}

TEST(FaultScheduleTest, TruncationDropsTheTailButKeepsTheCount) {
  FaultSchedule schedule;
  schedule.DefineDomain("liar", {"s0"});
  FaultWindow window = Window("liar", 0, 100, FaultEffect::kMalform);
  window.malform_modes = kMalformTruncate;
  window.malform_row_probability = 1.0;
  schedule.AddWindow(window);
  schedule.AdvanceTo(10);

  ScheduledFaultWrapper w = MakeWrapped(&schedule);
  auto r = w.Execute(*algebra::Scan("T"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 4u);  // half the stream silently dropped
  // The declared count keeps the lie on record for the result guard.
  EXPECT_EQ(r->objects_produced, 8);
  // Surviving rows are the (uncorrupted) prefix.
  for (size_t i = 0; i < r->tuples.size(); ++i) {
    EXPECT_EQ(r->tuples[i][0].AsInt64(), static_cast<int64_t>(i));
  }
  EXPECT_EQ(w.malformed_responses(), 1);
}

TEST(FaultScheduleTest, CorruptionIsDeterministicPerCallIndex) {
  auto run = [](int calls) {
    FaultSchedule schedule(0xFEED);
    schedule.DefineDomain("liar", {"s0"});
    FaultWindow window = Window("liar", 0, 1000, FaultEffect::kMalform);
    window.malform_modes = kMalformAll;
    window.malform_row_probability = 0.5;
    schedule.AddWindow(window);
    schedule.AdvanceTo(10);
    ScheduledFaultWrapper w = MakeWrapped(&schedule);
    std::string digest;
    for (int c = 0; c < calls; ++c) {
      auto r = w.Execute(*algebra::Scan("T"));
      if (!r.ok()) continue;
      for (const storage::Tuple& row : r->tuples) {
        for (const Value& v : row) digest += v.ToString() + ",";
        digest += ";";
      }
      digest += "|";
    }
    return digest;
  };
  // Same schedule seed, same call sequence: bit-identical corruption --
  // this is what makes chaos runs replayable.
  EXPECT_EQ(run(5), run(5));
  // And the corruption stream is keyed by call index, so a fresh
  // wrapper replaying fewer calls matches the prefix.
  const std::string five = run(5);
  const std::string two = run(2);
  EXPECT_EQ(five.substr(0, two.size()), two);
}

TEST(FaultScheduleTest, EffectNamesRender) {
  EXPECT_STREQ(FaultEffectToString(FaultEffect::kOutage), "outage");
  EXPECT_STREQ(FaultEffectToString(FaultEffect::kLatencyStorm),
               "latency-storm");
  EXPECT_STREQ(FaultEffectToString(FaultEffect::kFlap), "flap");
  EXPECT_STREQ(FaultEffectToString(FaultEffect::kMalform), "malform");
}

}  // namespace
}  // namespace wrapper
}  // namespace disco
