// Property test for the circuit-breaker state machine: seed-swept
// randomized submit/outcome sequences, with every observable invariant
// checked after every operation.
//
// The documented machine (src/mediator/source_health.h):
//
//        K consecutive failures          cooldown elapses
//   closed ----------------------> open -----------------> half-open
//     ^                             ^                          |
//     |        probe succeeds       |      probe fails         |
//     +-----------------------------+--------------------------+
//
// plus the two refinements: flap damping (failed probes double the
// effective cooldown, capped) and lying sources (consecutive malformed
// batches trip the breaker like failures do). The driver only records
// outcomes for submits the gate admitted -- like the executor does --
// and sometimes loses a probe on purpose to exercise the forfeit path.

#include <cstdint>
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mediator/source_health.h"

namespace disco {
namespace mediator {
namespace {

/// One legal-transition check: `from` -> `to` under operation `op`.
void ExpectLegalTransition(BreakerState from, BreakerState to,
                           const char* op, uint64_t seed, int step) {
  bool legal = false;
  if (from == to) {
    legal = true;  // every operation may leave the state alone
  } else if (from == BreakerState::kClosed && to == BreakerState::kOpen) {
    legal = true;  // failure / malformed threshold reached
  } else if (from == BreakerState::kOpen &&
             to == BreakerState::kHalfOpen) {
    legal = true;  // cooldown elapsed, probe admitted
  } else if (from == BreakerState::kHalfOpen &&
             to == BreakerState::kOpen) {
    legal = true;  // probe failed
  } else if (to == BreakerState::kClosed) {
    legal = true;  // successful (probe) submit re-closes from anywhere
  }
  EXPECT_TRUE(legal) << "seed " << seed << " step " << step << ": " << op
                     << " moved " << BreakerStateToString(from) << " -> "
                     << BreakerStateToString(to);
}

TEST(SourceHealthPropertyTest, RandomizedSequencesKeepEveryInvariant) {
  SourceHealthOptions options;
  options.failure_threshold = 3;
  options.cooldown_ms = 100;
  options.malformed_threshold = 2;
  options.max_cooldown_doublings = 3;
  const double max_cooldown =
      options.cooldown_ms * (1 << options.max_cooldown_doublings);

  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ULL);
    SourceHealthRegistry reg(options);
    const std::string source = "s";
    double now = 0;
    SourceHealth prev = reg.Health(source);

    for (int step = 0; step < 300; ++step) {
      now += rng.NextDouble() * 80;
      const SourceHealth before = reg.Health(source);
      const double cooldown = reg.EffectiveCooldownMs(source);

      const bool admitted = reg.AllowSubmit(source, now);
      {
        const SourceHealth after = reg.Health(source);
        ExpectLegalTransition(before.state, after.state, "AllowSubmit",
                              seed, step);
        // Rejections are counted, admissions are not.
        EXPECT_EQ(after.rejected_submits,
                  before.rejected_submits + (admitted ? 0 : 1));
        // An open breaker still cooling down must reject.
        if (before.state == BreakerState::kOpen &&
            now - before.opened_at_ms < cooldown) {
          EXPECT_FALSE(admitted)
              << "seed " << seed << " step " << step
              << ": submit admitted " << now - before.opened_at_ms
              << " ms into a " << cooldown << " ms cooldown";
        }
        // A half-open breaker with a live probe must reject the racer.
        if (before.state == BreakerState::kHalfOpen &&
            before.probe_in_flight &&
            now - before.probe_started_ms < cooldown) {
          EXPECT_FALSE(admitted)
              << "seed " << seed << " step " << step
              << ": second probe admitted while one is in flight";
        }
        // An admission out of open is exactly the half-open probe.
        if (before.state == BreakerState::kOpen && admitted) {
          EXPECT_EQ(after.state, BreakerState::kHalfOpen);
          EXPECT_TRUE(after.probe_in_flight);
        }
      }

      if (admitted) {
        // Resolve the admitted submit -- or, 1 in 8 times, lose it
        // (cancellation / deadline expiry) to exercise the forfeit.
        const uint64_t verdict = rng.NextUint64(8);
        const SourceHealth mid = reg.Health(source);
        if (verdict == 0) {
          // lost probe: no outcome recorded
        } else if (verdict <= 3) {
          reg.RecordSuccess(source, now);
          const SourceHealth after = reg.Health(source);
          ExpectLegalTransition(mid.state, after.state, "RecordSuccess",
                                seed, step);
          EXPECT_EQ(after.state, BreakerState::kClosed);
          EXPECT_EQ(after.consecutive_failures, 0);
          EXPECT_EQ(after.consecutive_probe_failures, 0);
          EXPECT_FALSE(after.lying);
        } else if (verdict <= 5) {
          reg.RecordFailure(source, now);
          const SourceHealth after = reg.Health(source);
          ExpectLegalTransition(mid.state, after.state, "RecordFailure",
                                seed, step);
          if (mid.state == BreakerState::kHalfOpen) {
            EXPECT_EQ(after.state, BreakerState::kOpen);
            EXPECT_EQ(after.consecutive_probe_failures,
                      mid.consecutive_probe_failures + 1);
          }
        } else {
          // The transport succeeded but the payload was garbage: the
          // executor records the success, then the guard's verdict.
          reg.RecordSuccess(source, now);
          if (rng.NextUint64(2) == 0) {
            reg.RecordMalformed(source, now,
                                1 + static_cast<int64_t>(rng.NextUint64(5)));
            const SourceHealth after = reg.Health(source);
            ExpectLegalTransition(BreakerState::kClosed, after.state,
                                  "RecordMalformed", seed, step);
            // A malformed batch that reaches the threshold while closed
            // trips immediately -- no closed state survives the call
            // with a full streak.
            if (after.state == BreakerState::kClosed) {
              EXPECT_LT(after.consecutive_malformed_batches,
                        options.malformed_threshold);
            } else {
              EXPECT_TRUE(after.lying);  // the only trip out of closed here
            }
          } else {
            reg.RecordWellFormed(source, now);
            EXPECT_EQ(reg.Health(source).consecutive_malformed_batches, 0);
          }
        }
      }

      // Global invariants, checked every step.
      const SourceHealth h = reg.Health(source);
      EXPECT_GE(h.total_successes, prev.total_successes);
      EXPECT_GE(h.total_failures, prev.total_failures);
      EXPECT_GE(h.rejected_submits, prev.rejected_submits);
      EXPECT_GE(h.malformed_batches, prev.malformed_batches);
      EXPECT_GE(h.quarantined_rows, prev.quarantined_rows);
      EXPECT_GE(h.consecutive_failures, 0);
      EXPECT_GE(h.consecutive_probe_failures, 0);
      if (h.state == BreakerState::kClosed) {
        EXPECT_LT(h.consecutive_failures, options.failure_threshold);
        // (No such bound for the malformed streak: a successful probe
        // re-closes the breaker but only a *well-formed* batch resets
        // the streak -- a re-trusted liar re-trips on its next lie.)
      }
      const double effective = reg.EffectiveCooldownMs(source);
      EXPECT_GE(effective, options.cooldown_ms);
      EXPECT_LE(effective, max_cooldown);
      prev = h;
    }
  }
}

TEST(SourceHealthPropertyTest, LyingTripCountsAsAnOpenNotAFailure) {
  SourceHealthOptions options;
  options.malformed_threshold = 2;
  options.cooldown_ms = 100;
  SourceHealthRegistry reg(options);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const std::string s = "liar" + std::to_string(seed);
    int batches = 0;
    while (reg.Health(s).state == BreakerState::kClosed && batches < 50) {
      const double now = static_cast<double>(++batches);
      ASSERT_TRUE(reg.AllowSubmit(s, now));
      reg.RecordSuccess(s, now);
      if (rng.NextUint64(3) == 0) {
        reg.RecordWellFormed(s, now);
      } else {
        reg.RecordMalformed(s, now, 1);
      }
    }
    const SourceHealth h = reg.Health(s);
    if (h.state == BreakerState::kOpen) {
      EXPECT_TRUE(h.lying);
      EXPECT_EQ(h.total_failures, 0);  // transport never failed
      EXPECT_GE(h.malformed_batches, options.malformed_threshold);
    }
  }
}

}  // namespace
}  // namespace mediator
}  // namespace disco
