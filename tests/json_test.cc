// The minimal JSON parser behind the repo's bench/metric tooling
// (common/json.h): documents this repo emits must parse, path lookup
// and numeric flattening must be exact, and malformed input must error
// rather than crash.

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace disco {
namespace json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE((*ParseJson("null"))->is_null());
  EXPECT_TRUE((*ParseJson("true"))->bool_value);
  EXPECT_FALSE((*ParseJson("false"))->bool_value);
  EXPECT_DOUBLE_EQ((*ParseJson("-12.5e2"))->number_value, -1250.0);
  EXPECT_EQ((*ParseJson("\"a\\nb\\\"c\""))->string_value, "a\nb\"c");
  EXPECT_EQ((*ParseJson("\"\\u0041\""))->string_value, "A");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto r = ParseJson(
      "{\"plan_cache\":{\"cold_ms_per_query\":3.1,\"speedup\":31.4},"
      "\"thread_scaling\":[{\"threads\":1,\"wall_ms\":9.5},"
      "{\"threads\":4,\"wall_ms\":3.2}],\"note\":\"text\"}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& v = **r;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.GetPath("plan_cache.speedup")->number_value, 31.4);
  EXPECT_DOUBLE_EQ(v.GetPath("thread_scaling.1.wall_ms")->number_value, 3.2);
  EXPECT_EQ(v.GetPath("note")->string_value, "text");
  EXPECT_EQ(v.GetPath("plan_cache.missing"), nullptr);
  EXPECT_EQ(v.GetPath("thread_scaling.7.wall_ms"), nullptr);
}

TEST(JsonTest, FlattenNumbersUsesDottedPaths) {
  auto r = ParseJson(
      "{\"a\":{\"b\":1.5},\"list\":[2,{\"c\":3}],\"flag\":true,"
      "\"skip\":\"string\",\"gone\":null}");
  ASSERT_TRUE(r.ok());
  const auto flat = FlattenNumbers(**r);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat.at("a.b"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("list.0"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("list.1.c"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("flag"), 1.0);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  // One code point per UTF-8 width: 1, 2, 3 bytes, then a surrogate
  // pair combining into a 4-byte supplementary character.
  EXPECT_EQ((*ParseJson("\"\\u0024\""))->string_value, "$");
  EXPECT_EQ((*ParseJson("\"\\u00e9\""))->string_value, "\xC3\xA9");  // é
  EXPECT_EQ((*ParseJson("\"\\u20AC\""))->string_value,
            "\xE2\x82\xAC");  // €
  EXPECT_EQ((*ParseJson("\"\\uD83D\\uDE00\""))->string_value,
            "\xF0\x9F\x98\x80");  // U+1F600
  EXPECT_EQ((*ParseJson("\"\\uD834\\uDD1E\""))->string_value,
            "\xF0\x9D\x84\x9E");  // U+1D11E
  // Escaped and mixed content round-trips in place.
  EXPECT_EQ((*ParseJson("\"a\\u00E9b\\uD83D\\uDE00c\""))->string_value,
            "a\xC3\xA9"
            "b\xF0\x9F\x98\x80"
            "c");
  // Raw UTF-8 passthrough still works alongside the escapes.
  EXPECT_EQ((*ParseJson("\"\xE2\x82\xAC = \\u20AC\""))->string_value,
            "\xE2\x82\xAC = \xE2\x82\xAC");
}

TEST(JsonTest, RejectsBadUnicodeEscapes) {
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());        // truncated
  EXPECT_FALSE(ParseJson("\"\\u12G4\"").ok());      // bad hex digit
  EXPECT_FALSE(ParseJson("\"\\uD800\"").ok());      // unpaired high
  EXPECT_FALSE(ParseJson("\"\\uD800x\"").ok());     // high then text
  EXPECT_FALSE(ParseJson("\"\\uD800\\n\"").ok());   // high then escape
  EXPECT_FALSE(ParseJson("\"\\uD800\\u0041\"").ok());  // bad low half
  EXPECT_FALSE(ParseJson("\"\\uDC00\"").ok());      // lone low
  EXPECT_FALSE(ParseJson("\"\\uD83D\\uD83D\"").ok());  // high + high
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonTest, ObjectKeysPreserveDocumentOrder) {
  auto r = ParseJson("{\"z\":1,\"a\":2}");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->members.size(), 2u);
  EXPECT_EQ((*r)->members[0].first, "z");
  EXPECT_EQ((*r)->members[1].first, "a");
}

}  // namespace
}  // namespace json
}  // namespace disco
