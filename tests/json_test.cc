// The minimal JSON parser behind the repo's bench/metric tooling
// (common/json.h): documents this repo emits must parse, path lookup
// and numeric flattening must be exact, and malformed input must error
// rather than crash.

#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace disco {
namespace json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE((*ParseJson("null"))->is_null());
  EXPECT_TRUE((*ParseJson("true"))->bool_value);
  EXPECT_FALSE((*ParseJson("false"))->bool_value);
  EXPECT_DOUBLE_EQ((*ParseJson("-12.5e2"))->number_value, -1250.0);
  EXPECT_EQ((*ParseJson("\"a\\nb\\\"c\""))->string_value, "a\nb\"c");
  EXPECT_EQ((*ParseJson("\"\\u0041\""))->string_value, "A");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto r = ParseJson(
      "{\"plan_cache\":{\"cold_ms_per_query\":3.1,\"speedup\":31.4},"
      "\"thread_scaling\":[{\"threads\":1,\"wall_ms\":9.5},"
      "{\"threads\":4,\"wall_ms\":3.2}],\"note\":\"text\"}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const JsonValue& v = **r;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.GetPath("plan_cache.speedup")->number_value, 31.4);
  EXPECT_DOUBLE_EQ(v.GetPath("thread_scaling.1.wall_ms")->number_value, 3.2);
  EXPECT_EQ(v.GetPath("note")->string_value, "text");
  EXPECT_EQ(v.GetPath("plan_cache.missing"), nullptr);
  EXPECT_EQ(v.GetPath("thread_scaling.7.wall_ms"), nullptr);
}

TEST(JsonTest, FlattenNumbersUsesDottedPaths) {
  auto r = ParseJson(
      "{\"a\":{\"b\":1.5},\"list\":[2,{\"c\":3}],\"flag\":true,"
      "\"skip\":\"string\",\"gone\":null}");
  ASSERT_TRUE(r.ok());
  const auto flat = FlattenNumbers(**r);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat.at("a.b"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("list.0"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("list.1.c"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("flag"), 1.0);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonTest, ObjectKeysPreserveDocumentOrder) {
  auto r = ParseJson("{\"z\":1,\"a\":2}");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->members.size(), 2u);
  EXPECT_EQ((*r)->members[0].first, "z");
  EXPECT_EQ((*r)->members[1].first, "a");
}

}  // namespace
}  // namespace json
}  // namespace disco
