#include "sources/source_engine.h"

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "sources/data_source.h"

namespace disco {
namespace sources {
namespace {

using algebra::AggFunc;
using algebra::CmpOp;
using algebra::JoinPredicate;
using algebra::Scan;
using algebra::Select;
using storage::Tuple;

/// A small two-table source for engine tests.
std::unique_ptr<DataSource> MakeTestSource(bool with_index,
                                           bool allow_index = true) {
  storage::SourceCostParams params;
  params.ms_startup = 10;
  params.ms_per_page_read = 5;
  params.ms_per_object = 1;
  params.ms_per_cmp = 0.01;
  EngineOptions engine;
  engine.allow_index = allow_index;
  auto source = std::make_unique<DataSource>("test", 512, params, engine);

  storage::Table* people = source->CreateTable(CollectionSchema(
      "Person", {{"id", AttrType::kLong},
                 {"dept", AttrType::kLong},
                 {"name", AttrType::kString}}));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(people
                    ->Insert({Value(int64_t{i}), Value(int64_t{i % 10}),
                              Value("p" + std::to_string(i))})
                    .ok());
  }
  if (with_index) {
    EXPECT_TRUE(people->CreateIndex("id").ok());
  }

  storage::Table* depts = source->CreateTable(CollectionSchema(
      "Dept", {{"dno", AttrType::kLong}, {"title", AttrType::kString}}));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        depts->Insert({Value(int64_t{i}), Value("d" + std::to_string(i))})
            .ok());
  }
  if (with_index) {
    EXPECT_TRUE(depts->CreateIndex("dno").ok());
  }
  return source;
}

TEST(SourceEngineTest, ScanReturnsEverything) {
  auto src = MakeTestSource(false);
  auto r = src->Execute(*Scan("Person"));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tuples.size(), 100u);
  EXPECT_EQ(r->columns,
            (std::vector<std::string>{"id", "dept", "name"}));
  EXPECT_GT(r->total_ms, 0);
  EXPECT_LE(r->first_tuple_ms, r->total_ms);
  EXPECT_EQ(r->objects_produced, 100);
}

TEST(SourceEngineTest, UnknownCollectionFails) {
  auto src = MakeTestSource(false);
  EXPECT_TRUE(src->Execute(*Scan("Ghost")).status().IsNotFound());
}

TEST(SourceEngineTest, SelectEquivalenceIndexVsSequential) {
  // The same query must return identical rows whether or not the engine
  // may use an index.
  auto pred_plan = [] {
    return Select(Scan("Person"), "id", CmpOp::kLe, Value(int64_t{20}));
  };
  auto indexed = MakeTestSource(true);
  auto plain = MakeTestSource(true, /*allow_index=*/false);
  auto r1 = indexed->Execute(*pred_plan());
  auto r2 = plain->Execute(*pred_plan());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->tuples.size(), 21u);
  ASSERT_EQ(r1->tuples.size(), r2->tuples.size());
  for (size_t i = 0; i < r1->tuples.size(); ++i) {
    EXPECT_EQ(r1->tuples[i][0], r2->tuples[i][0]);
  }
}

TEST(SourceEngineTest, SelectChainsBecomeOneAccessPath) {
  auto src = MakeTestSource(true);
  auto plan = Select(Select(Scan("Person"), "id", CmpOp::kLe,
                            Value(int64_t{50})),
                     "dept", CmpOp::kEq, Value(int64_t{3}));
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ids 3, 13, 23, 33, 43.
  EXPECT_EQ(r->tuples.size(), 5u);
}

TEST(SourceEngineTest, AllComparisonOpsWork) {
  auto src = MakeTestSource(true);
  struct Case {
    CmpOp op;
    size_t expected;
  };
  for (const auto& c :
       {Case{CmpOp::kEq, 1}, Case{CmpOp::kNe, 99}, Case{CmpOp::kLt, 50},
        Case{CmpOp::kLe, 51}, Case{CmpOp::kGt, 49}, Case{CmpOp::kGe, 50}}) {
    auto plan = Select(Scan("Person"), "id", c.op, Value(int64_t{50}));
    auto r = src->Execute(*plan);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->tuples.size(), c.expected)
        << algebra::CmpOpToString(c.op);
  }
}

TEST(SourceEngineTest, ProjectKeepsRequestedColumns) {
  auto src = MakeTestSource(false);
  auto plan = algebra::Project(Scan("Person"), {"name", "id"});
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns, (std::vector<std::string>{"name", "id"}));
  EXPECT_EQ(r->tuples[0].size(), 2u);
  EXPECT_TRUE(r->tuples[0][0].is_string());
}

TEST(SourceEngineTest, SortOrdersRows) {
  auto src = MakeTestSource(false);
  auto plan = algebra::Sort(Scan("Person"), "id", /*ascending=*/false);
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.front()[0], Value(int64_t{99}));
  EXPECT_EQ(r->tuples.back()[0], Value(int64_t{0}));
}

TEST(SourceEngineTest, DedupRemovesDuplicates) {
  auto src = MakeTestSource(false);
  auto plan = algebra::Dedup(algebra::Project(Scan("Person"), {"dept"}));
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 10u);
}

TEST(SourceEngineTest, ScalarAggregates) {
  auto src = MakeTestSource(false);
  struct Case {
    AggFunc func;
    std::string attr;
    Value expected;
  };
  for (const auto& c : {Case{AggFunc::kCount, "", Value(int64_t{100})},
                        Case{AggFunc::kSum, "dept", Value(450.0)},
                        Case{AggFunc::kAvg, "dept", Value(4.5)},
                        Case{AggFunc::kMin, "id", Value(int64_t{0})},
                        Case{AggFunc::kMax, "id", Value(int64_t{99})}}) {
    auto plan = algebra::Aggregate(Scan("Person"), c.func, c.attr);
    auto r = src->Execute(*plan);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->tuples.size(), 1u);
    EXPECT_EQ(r->tuples[0][0], c.expected)
        << algebra::AggFuncToString(c.func);
  }
}

TEST(SourceEngineTest, GroupByAggregates) {
  auto src = MakeTestSource(false);
  auto plan =
      algebra::Aggregate(Scan("Person"), AggFunc::kCount, "", {"dept"});
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 10u);
  for (const Tuple& t : r->tuples) {
    EXPECT_EQ(t[1], Value(int64_t{10}));
  }
}

TEST(SourceEngineTest, AggregateOverEmptyInput) {
  auto src = MakeTestSource(false);
  auto plan = algebra::Aggregate(
      Select(Scan("Person"), "id", CmpOp::kGt, Value(int64_t{1000})),
      AggFunc::kCount, "");
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->tuples.size(), 1u);
  EXPECT_EQ(r->tuples[0][0], Value(int64_t{0}));
}

TEST(SourceEngineTest, JoinStrategiesAgree) {
  // Index nested loop (right is an indexed scan), nested loops (small
  // inputs) and sort-merge must produce the same multiset of rows.
  auto run_join = [](bool with_index) {
    auto src = MakeTestSource(with_index);
    auto plan = algebra::Join(Scan("Person"), Scan("Dept"),
                              JoinPredicate{"dept", "dno"});
    auto r = src->Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->tuples.size();
  };
  EXPECT_EQ(run_join(true), 100u);
  EXPECT_EQ(run_join(false), 100u);
}

TEST(SourceEngineTest, JoinColumnsConcatenate) {
  auto src = MakeTestSource(true);
  auto plan = algebra::Join(Scan("Dept"), Scan("Person"),
                            JoinPredicate{"dno", "dept"});
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns, (std::vector<std::string>{"dno", "title", "id",
                                                  "dept", "name"}));
}

TEST(SourceEngineTest, UnionConcatenates) {
  auto src = MakeTestSource(false);
  auto plan = algebra::Union(algebra::Project(Scan("Person"), {"id"}),
                             algebra::Project(Scan("Dept"), {"dno"}));
  auto r = src->Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples.size(), 110u);
}

TEST(SourceEngineTest, SubmitRejected) {
  auto src = MakeTestSource(false);
  auto plan = algebra::Submit("x", Scan("Person"));
  EXPECT_TRUE(src->Execute(*plan).status().IsNotSupported());
}

TEST(SourceEngineTest, IndexPathIsCheaperForSelectivePredicates) {
  // Needs a table big enough that a full scan dwarfs an index probe.
  auto make_big = [](bool allow_index) {
    storage::SourceCostParams params;
    params.ms_startup = 10;
    params.ms_per_page_read = 5;
    params.ms_per_object = 1;
    params.ms_per_cmp = 0.01;
    EngineOptions engine;
    engine.allow_index = allow_index;
    auto src = std::make_unique<DataSource>("big", 512, params, engine);
    storage::Table* t = src->CreateTable(CollectionSchema(
        "Big", {{"id", AttrType::kLong}, {"v", AttrType::kLong}}));
    for (int i = 0; i < 5000; ++i) {
      EXPECT_TRUE(
          t->Insert({Value(int64_t{i}), Value(int64_t{i * 3})}).ok());
    }
    EXPECT_TRUE(t->CreateIndex("id").ok());
    src->env()->pool.Clear();
    return src;
  };
  auto make_plan = [] {
    return Select(Scan("Big"), "id", CmpOp::kEq, Value(int64_t{4242}));
  };
  auto r_idx = make_big(true)->Execute(*make_plan());
  auto r_seq = make_big(false)->Execute(*make_plan());
  ASSERT_TRUE(r_idx.ok());
  ASSERT_TRUE(r_seq.ok());
  EXPECT_EQ(r_idx->tuples.size(), 1u);
  EXPECT_EQ(r_seq->tuples.size(), 1u);
  EXPECT_LT(r_idx->total_ms, r_seq->total_ms / 2);
}

TEST(SourceEngineTest, RelColumnIndexResolution) {
  Rel rel;
  rel.columns = {"Person.id", "name"};
  EXPECT_EQ(*rel.ColumnIndex("Person.id"), 0);
  EXPECT_EQ(*rel.ColumnIndex("person.ID"), 0);  // case-insensitive
  EXPECT_EQ(*rel.ColumnIndex("id"), 0);         // suffix
  EXPECT_EQ(*rel.ColumnIndex("name"), 1);
  EXPECT_TRUE(rel.ColumnIndex("ghost").status().IsNotFound());
}

}  // namespace
}  // namespace sources
}  // namespace disco
