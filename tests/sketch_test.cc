#include "common/sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace disco {
namespace {

/// Deterministic pseudo-shuffled stream (no RNG: fixed LCG).
std::vector<double> ScrambledStream(int n) {
  std::vector<double> values;
  uint64_t state = 0x5EEDu;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    values.push_back(static_cast<double>(state % 10000) / 10.0);
  }
  return values;
}

double ExactQuantile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[std::max<size_t>(rank, 1) - 1];
}

TEST(SketchTest, EmptyAndSmallCountsAreExact) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.Value(), 0);
  q.Add(10);
  EXPECT_DOUBLE_EQ(q.Value(), 10);
  q.Add(30);
  q.Add(20);
  // Median of {10, 20, 30}, nearest rank.
  EXPECT_DOUBLE_EQ(q.Value(), 20);
  EXPECT_EQ(q.count(), 3);
}

TEST(SketchTest, MedianTracksUniformStream) {
  P2Quantile q(0.5);
  std::vector<double> stream = ScrambledStream(2000);
  for (double v : stream) q.Add(v);
  const double exact = ExactQuantile(stream, 0.5);
  // P^2 is approximate; on a uniform-ish stream it lands close.
  EXPECT_NEAR(q.Value(), exact, 0.05 * 1000.0);
}

TEST(SketchTest, P90TracksSkewedStream) {
  P2Quantile q(0.9);
  std::vector<double> stream;
  for (double v : ScrambledStream(3000)) {
    stream.push_back(v * v / 250.0);  // skew toward small values
    q.Add(stream.back());
  }
  const double exact = ExactQuantile(stream, 0.9);
  EXPECT_NEAR(q.Value(), exact, 0.1 * exact + 1.0);
}

TEST(SketchTest, DeterministicAcrossRuns) {
  P2Quantile a(0.9), b(0.9);
  for (double v : ScrambledStream(500)) a.Add(v);
  for (double v : ScrambledStream(500)) b.Add(v);
  EXPECT_EQ(a.Value(), b.Value());  // bitwise, not approximate
  EXPECT_EQ(a.count(), b.count());
}

TEST(SketchTest, MonotoneShiftMovesEstimate) {
  P2Quantile q(0.9);
  for (int i = 0; i < 200; ++i) q.Add(1.0);
  EXPECT_NEAR(q.Value(), 1.0, 1e-9);
  for (int i = 0; i < 2000; ++i) q.Add(100.0);
  EXPECT_GT(q.Value(), 50.0);
}

TEST(SketchTest, WindowForgetsOldSamples) {
  // 4 buckets x 250 ms = 1 s window.
  SlidingWindowQuantile w(0.9, 1000.0, 4);
  for (int i = 0; i < 40; ++i) w.Add(/*now_ms=*/i * 10.0, /*x=*/100.0);
  EXPECT_NEAR(w.Value(400.0), 100.0, 1e-9);
  EXPECT_EQ(w.count(400.0), 40);

  // The workload changes; within one window the old samples expire.
  for (int i = 0; i < 40; ++i) w.Add(1500.0 + i * 10.0, 5.0);
  EXPECT_NEAR(w.Value(1900.0), 5.0, 1e-9);
  // Far in the future the window is empty again.
  EXPECT_EQ(w.count(10000.0), 0);
  EXPECT_EQ(w.Value(10000.0), 0);
}

TEST(SketchTest, WindowBlendsLiveBuckets) {
  SlidingWindowQuantile w(0.5, 1000.0, 4);
  for (int i = 0; i < 10; ++i) w.Add(50.0, 10.0);    // bucket 0
  for (int i = 0; i < 10; ++i) w.Add(300.0, 30.0);   // bucket 1
  const double blended = w.Value(300.0);
  EXPECT_GT(blended, 10.0);
  EXPECT_LT(blended, 30.0);
  EXPECT_EQ(w.count(300.0), 20);
}

TEST(SketchTest, StaleTimestampsAreDropped) {
  SlidingWindowQuantile w(0.5, 1000.0, 4);
  w.Add(5000.0, 1.0);
  w.Add(100.0, 999.0);  // clock ran backwards: ignored
  EXPECT_EQ(w.count(5000.0), 1);
  EXPECT_NEAR(w.Value(5000.0), 1.0, 1e-9);
}

}  // namespace
}  // namespace disco
