// Property: whatever plan the optimizer picks, it computes the same
// answer as a naive reference plan (every relation submitted
// individually as a bare scan, all selections and joins at the
// mediator), across a randomized sweep of federations and queries.

#include <algorithm>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "mediator/mediator.h"
#include "optimizer/rewriter.h"

namespace disco {
namespace {

using storage::Tuple;

/// Canonical multiset representation of a result for comparison.
std::multiset<std::string> Canonical(const std::vector<Tuple>& tuples) {
  std::multiset<std::string> out;
  for (const Tuple& t : tuples) {
    std::string row;
    for (const Value& v : t) {
      row += v.ToString();
      row += '\x1f';
    }
    out.insert(std::move(row));
  }
  return out;
}

/// Builds the naive plan: submit(scan) per relation, then mediator-side
/// selects and joins in binder order, then the query tail.
std::unique_ptr<algebra::Operator> NaivePlan(const query::BoundQuery& q) {
  std::vector<std::unique_ptr<algebra::Operator>> parts;
  for (const query::BoundRelation& rel : q.relations) {
    std::unique_ptr<algebra::Operator> plan =
        algebra::Submit(rel.source, algebra::Scan(rel.collection));
    for (const algebra::SelectPredicate& p : rel.predicates) {
      plan = algebra::Select(std::move(plan), p);
    }
    parts.push_back(std::move(plan));
  }
  // Join in edge order; each edge connects a joined prefix with a new
  // relation (the binder guarantees an acyclic connected graph).
  std::vector<int> placed(parts.size(), -1);
  std::unique_ptr<algebra::Operator> plan = std::move(parts[0]);
  placed[0] = 0;
  std::vector<query::BoundJoin> edges = q.joins;
  while (!edges.empty()) {
    bool progressed = false;
    for (size_t i = 0; i < edges.size(); ++i) {
      const query::BoundJoin& e = edges[i];
      bool left_in = placed[static_cast<size_t>(e.left_rel)] >= 0;
      bool right_in = placed[static_cast<size_t>(e.right_rel)] >= 0;
      if (left_in == right_in) continue;  // both or neither
      int incoming = left_in ? e.right_rel : e.left_rel;
      algebra::JoinPredicate pred =
          left_in ? algebra::JoinPredicate{e.left_attr, e.right_attr}
                  : algebra::JoinPredicate{e.right_attr, e.left_attr};
      plan = algebra::Join(std::move(plan),
                           std::move(parts[static_cast<size_t>(incoming)]),
                           pred);
      placed[static_cast<size_t>(incoming)] = 0;
      edges.erase(edges.begin() + static_cast<long>(i));
      progressed = true;
      break;
    }
    if (!progressed) break;  // should not happen for connected graphs
  }
  return optimizer::AppendQueryTail(std::move(plan), q);
}

class PlanEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanEquivalenceTest, OptimizedEqualsNaive) {
  Rng rng(GetParam());

  // Random federation: 2 sources, 3 relations with a chain join graph
  // R0.j0 = R1.k0, R1.j1 = R2.k1.
  mediator::Mediator med;
  std::vector<std::string> sources{"alpha", "beta"};
  auto alpha = sources::MakeRelationalSource("alpha");
  auto beta = (rng.NextUint64(2) == 0)
                  ? sources::MakeRelationalSource("beta")
                  : sources::MakeFileSource("beta");

  auto add_table = [&](sources::DataSource* src, const std::string& name,
                       int64_t rows, int64_t key_space) {
    storage::Table* t = src->CreateTable(CollectionSchema(
        name, {{"k" + name, AttrType::kLong},
               {"j" + name, AttrType::kLong},
               {"v" + name, AttrType::kLong}}));
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_TRUE(t->Insert({Value(i % key_space),
                             Value(rng.NextInt64(0, key_space - 1)),
                             Value(rng.NextInt64(0, 99))})
                      .ok());
    }
    if (rng.NextUint64(2) == 0 && src->engine_options().allow_index) {
      EXPECT_TRUE(t->CreateIndex("k" + name).ok());
    }
  };
  const int64_t key_space = 20 + static_cast<int64_t>(rng.NextUint64(30));
  add_table(alpha.get(), "R0", 100 + static_cast<int64_t>(rng.NextUint64(200)),
            key_space);
  add_table(alpha.get(), "R1", 50 + static_cast<int64_t>(rng.NextUint64(100)),
            key_space);
  add_table(beta.get(), "R2", 30 + static_cast<int64_t>(rng.NextUint64(100)),
            key_space);

  wrapper::SimulatedWrapper::Options beta_opts;
  if (!beta->engine_options().allow_index) {
    beta_opts.capabilities = optimizer::SourceCapabilities::FilterOnly();
  }
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(alpha),
                                      wrapper::SimulatedWrapper::Options{}))
                  .ok());
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(beta), beta_opts))
                  .ok());

  // Random query over the chain.
  std::string sql = "SELECT vR0, vR2 FROM R0, R1, R2 "
                    "WHERE R0.jR0 = R1.kR1 AND R1.jR1 = R2.kR2";
  if (rng.NextUint64(2) == 0) {
    sql += StringPrintf(" AND vR0 >= %d",
                        static_cast<int>(rng.NextUint64(80)));
  }
  if (rng.NextUint64(2) == 0) {
    sql += StringPrintf(" AND kR2 <= %d",
                        static_cast<int>(rng.NextUint64(key_space)));
  }

  auto bound = med.Analyze(sql);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString() << "\n" << sql;

  auto optimized = med.Query(sql);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString() << "\n" << sql;

  std::unique_ptr<algebra::Operator> naive = NaivePlan(*bound);
  auto reference = med.Execute(*naive);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  EXPECT_EQ(Canonical(optimized->tuples), Canonical(reference->tuples))
      << sql << "\noptimized plan:\n"
      << optimized->plan_text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace disco
