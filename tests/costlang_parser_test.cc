#include "costlang/parser.h"

#include <gtest/gtest.h>

namespace disco {
namespace costlang {
namespace {

TEST(CostLangParserTest, ExprPrecedence) {
  auto e = ParseExpr("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(1 + (2 * 3))");

  e = ParseExpr("(1 + 2) * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((1 + 2) * 3)");

  e = ParseExpr("1 - 2 - 3");  // left associative
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((1 - 2) - 3)");

  e = ParseExpr("-a * b");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "((-a) * b)");
}

TEST(CostLangParserTest, PathsAndCalls) {
  auto e = ParseExpr("Employee.salary.Min + selectivity(A, V)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(Employee.salary.Min + selectivity(A, V))");

  e = ParseExpr("min(a, b, c)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->args.size(), 3u);
}

TEST(CostLangParserTest, Figure8ScanRule) {
  auto r = ParseRuleSet(
      "scan(employee) (\n"
      "  TotalTime = 120 + Employee.TotalSize * 12\n"
      "            + Employee.CountObject / Employee.CountDistinct\n"
      ")");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rules.size(), 1u);
  EXPECT_EQ(r->rules[0].head.op_name, "scan");
  ASSERT_EQ(r->rules[0].formulas.size(), 1u);
  EXPECT_EQ(r->rules[0].formulas[0].target, "TotalTime");
}

TEST(CostLangParserTest, Figure8SelectRule) {
  auto r = ParseRuleSet(
      "select(C, A = V) {\n"
      "  CountObject = C.CountObject * selectivity(A, V);\n"
      "  TotalSize = CountObject * C.ObjectSize;\n"
      "  TotalTime = C.TotalTime + C.TotalSize * 25;\n"
      "}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rules.size(), 1u);
  const RuleAst& rule = r->rules[0];
  ASSERT_EQ(rule.head.args.size(), 2u);
  EXPECT_FALSE(rule.head.args[0].cmp.has_value());
  ASSERT_TRUE(rule.head.args[1].cmp.has_value());
  EXPECT_EQ(*rule.head.args[1].cmp, algebra::CmpOp::kEq);
  EXPECT_EQ(rule.formulas.size(), 3u);
}

TEST(CostLangParserTest, RangePatternAndLiterals) {
  auto r = ParseRuleSet(
      "select(Employee, salary <= 100) { TotalTime = 1; }\n"
      "select(Employee, name = 'Smith') { TotalTime = 2; }\n"
      "select(Employee, salary = -5) { TotalTime = 3; }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rules.size(), 3u);
  EXPECT_EQ(*r->rules[0].head.args[1].cmp, algebra::CmpOp::kLe);
  EXPECT_EQ(r->rules[1].head.args[1].rhs->string_value, "Smith");
  EXPECT_DOUBLE_EQ(r->rules[2].head.args[1].rhs->number, -5);
}

TEST(CostLangParserTest, Defines) {
  auto r = ParseRuleSet(
      "define PageSize = 4000;\n"
      "define IO = 25;\n"
      "scan(C) { TotalTime = IO * (C.TotalSize / PageSize); }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->defs.size(), 2u);
  EXPECT_EQ(r->defs[0].name, "PageSize");
}

TEST(CostLangParserTest, QualifiedJoinPattern) {
  auto r = ParseRuleSet(
      "join(Employee, Book, x1.id = x2.id) { TotalTime = 9; }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RuleHeadAst& head = r->rules[0].head;
  ASSERT_EQ(head.args.size(), 3u);
  EXPECT_EQ(head.args[2].lhs.path,
            (std::vector<std::string>{"x1", "id"}));
}

TEST(CostLangParserTest, MultipleRulesKeepOrder) {
  auto r = ParseRuleSet(
      "select(A, P) { TotalTime = 1; }\n"
      "select(B, P) { TotalTime = 2; }\n"
      "scan(C) { TotalTime = 3; }");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rules.size(), 3u);
  EXPECT_EQ(r->rules[0].head.ToString(), "select(A, P)");
  EXPECT_EQ(r->rules[2].head.op_name, "scan");
}

TEST(CostLangParserTest, Errors) {
  EXPECT_TRUE(ParseRuleSet("scan(C) { }").status().IsParseError());  // empty
  EXPECT_TRUE(ParseRuleSet("scan() { TotalTime = 1; }").status()
                  .IsParseError());  // no args
  EXPECT_TRUE(ParseRuleSet("scan(C { TotalTime = 1; }").status()
                  .IsParseError());  // bad head
  EXPECT_TRUE(ParseRuleSet("scan(C) TotalTime = 1;").status()
                  .IsParseError());  // no body braces
  EXPECT_TRUE(ParseRuleSet("scan(C) { TotalTime = ; }").status()
                  .IsParseError());  // empty expr
  EXPECT_TRUE(ParseExpr("1 +").status().IsParseError());
  EXPECT_TRUE(ParseExpr("1 2").status().IsParseError());  // trailing input
}

TEST(CostLangParserTest, SemicolonsOptionalAtBodyEnd) {
  auto r = ParseRuleSet("scan(C) { TotalTime = 1 }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

}  // namespace
}  // namespace costlang
}  // namespace disco
