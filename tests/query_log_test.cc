// QueryLog flight recorder: ring-buffer bounds, JSONL schema + escaping,
// and the tolerant line parser behind replay.

#include "mediator/query_log.h"

#include <gtest/gtest.h>

#include <string>

namespace disco {
namespace mediator {
namespace {

QueryLogEntry MakeEntry(const std::string& sql, double measured = 10.0) {
  QueryLogEntry e;
  e.sql = sql;
  e.plan_fingerprint = "00c0ffee00c0ffee";
  e.estimated_ms = 12.5;
  e.measured_ms = measured;
  e.start_ms = 1.25;
  return e;
}

TEST(QueryLogTest, AssignsMonotonicSeqAndKeepsOrder) {
  QueryLog log(8);
  EXPECT_EQ(log.Record(MakeEntry("q1")), 1);
  EXPECT_EQ(log.Record(MakeEntry("q2")), 2);
  EXPECT_EQ(log.Record(MakeEntry("q3")), 3);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sql, "q1");
  EXPECT_EQ(entries[2].sql, "q3");
  EXPECT_EQ(log.Last()->sql, "q3");
  EXPECT_EQ(log.dropped(), 0);
}

TEST(QueryLogTest, RingEvictsOldestAndCountsDrops) {
  QueryLog log(3);
  for (int i = 1; i <= 7; ++i) {
    log.Record(MakeEntry("q" + std::to_string(i)));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 4);
  EXPECT_EQ(log.total_recorded(), 7);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sql, "q5");  // oldest retained
  EXPECT_EQ(entries[1].sql, "q6");
  EXPECT_EQ(entries[2].sql, "q7");
  EXPECT_EQ(entries[0].seq, 5);
  EXPECT_EQ(log.Last()->sql, "q7");
}

TEST(QueryLogTest, ZeroCapacityDisablesRecording) {
  QueryLog log(0);
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.Record(MakeEntry("q")), 0);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.ToJsonl(), "");
  EXPECT_EQ(log.Last(), nullptr);
}

TEST(QueryLogTest, JsonlEscapesSqlAndWarnings) {
  QueryLog log(4);
  QueryLogEntry e = MakeEntry("SELECT name FROM T WHERE name = 'a\"b\\c'");
  e.warnings.push_back("source 'x': line1\nline2");
  log.Record(e);
  const std::string jsonl = log.ToJsonl();
  // Exactly one line, with the quote/backslash/newline escaped.
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_EQ(jsonl.find('\n'), jsonl.size() - 1) << jsonl;
  EXPECT_NE(jsonl.find("a\\\"b\\\\c"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("line1\\nline2"), std::string::npos) << jsonl;
}

TEST(QueryLogTest, JsonlCarriesSubmitCostVectors) {
  QueryLog log(4);
  QueryLogEntry e = MakeEntry("SELECT k FROM R");
  QueryLogSubmit s;
  s.source = "erp";
  s.subplan = "scan(R)";
  s.scope = "default";
  s.attempts = 2;
  s.estimated = costmodel::CostVector::Full(100, 900, 9, 120, 1, 450);
  s.measured = costmodel::CostVector::Full(100, 900, 9, 130, 1, 500);
  e.submits.push_back(s);
  log.Record(e);
  const std::string jsonl = log.ToJsonl();
  EXPECT_NE(jsonl.find("\"source\":\"erp\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"subplan\":\"scan(R)\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"scope\":\"default\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"estimated\":{\"total_ms\":450.000"),
            std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"measured\":{\"total_ms\":500.000"),
            std::string::npos);
}

TEST(QueryLogTest, ParseRoundTripsSqlWithEscapes) {
  QueryLog log(4);
  const std::string sql = "SELECT k FROM R WHERE s = 'a\"b\\c'";
  QueryLogEntry e = MakeEntry(sql, /*measured=*/77.5);
  log.Record(e);
  const std::string line = log.Entries()[0].ToJson();
  auto parsed = QueryLog::ParseJsonLine(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sql, sql);
  EXPECT_EQ(parsed->seq, 1);
  EXPECT_DOUBLE_EQ(parsed->estimated_ms, 12.5);
  EXPECT_DOUBLE_EQ(parsed->measured_ms, 77.5);
  EXPECT_TRUE(parsed->ok);
}

TEST(QueryLogTest, ParseSkipsBlankCommentsAndPlanOnlyEntries) {
  EXPECT_FALSE(QueryLog::ParseJsonLine("").has_value());
  EXPECT_FALSE(QueryLog::ParseJsonLine("   ").has_value());
  EXPECT_FALSE(QueryLog::ParseJsonLine("# header comment").has_value());
  EXPECT_FALSE(QueryLog::ParseJsonLine("{\"seq\":1}").has_value());
}

TEST(QueryLogTest, ParseReadsFailedQueries) {
  QueryLogEntry e = MakeEntry("SELECT k FROM Missing");
  e.ok = false;
  e.error = "NotFound: no collection";
  auto parsed = QueryLog::ParseJsonLine(e.ToJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ok);
}

TEST(QueryLogTest, FieldHelpersDecodeEscapes) {
  using mediator::internal::JsonNumberField;
  using mediator::internal::JsonStringField;
  const std::string line =
      "{\"a\":\"x\\\\y\\\"z\\n\\u0007w\",\"n\":-12.75}";
  auto s = JsonStringField(line, "a");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "x\\y\"z\n\aw");
  auto n = JsonNumberField(line, "n");
  ASSERT_TRUE(n.has_value());
  EXPECT_DOUBLE_EQ(*n, -12.75);
  EXPECT_FALSE(JsonStringField(line, "missing").has_value());
  EXPECT_FALSE(JsonStringField("{\"a\":\"unterminated", "a").has_value());
}

}  // namespace
}  // namespace mediator
}  // namespace disco
