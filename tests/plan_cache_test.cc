// The parameterized plan cache (docs/PERFORMANCE.md): canonicalization,
// hit/miss behaviour, constant substitution, every invalidation hook,
// LRU eviction, and the capacity-0 off switch.

#include "mediator/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mediator/mediator.h"

namespace disco {
namespace {

using mediator::Canonicalize;
using mediator::CanonicalQuery;
using mediator::Mediator;
using mediator::MediatorOptions;

std::unique_ptr<Mediator> BuildFederation(MediatorOptions opts = {}) {
  auto med = std::make_unique<Mediator>(opts);

  auto hr = sources::MakeRelationalSource("hr");
  storage::Table* emp = hr->CreateTable(CollectionSchema(
      "Emp", {{"eid", AttrType::kLong},
              {"salary", AttrType::kLong},
              {"dept", AttrType::kLong}}));
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(emp->Insert({Value(int64_t{i}), Value(int64_t{i % 200}),
                             Value(int64_t{i % 10})})
                    .ok());
  }
  EXPECT_TRUE(emp->CreateIndex("eid").ok());
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(hr),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto fin = sources::MakeRelationalSource("fin");
  storage::Table* dept = fin->CreateTable(CollectionSchema(
      "Dept", {{"did", AttrType::kLong}, {"budget", AttrType::kLong}}));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(dept->Insert({Value(int64_t{i}), Value(int64_t{i * 1000})})
                    .ok());
  }
  // A same-schema copy of Emp, so equivalence declarations are legal.
  storage::Table* mirror = fin->CreateTable(CollectionSchema(
      "EmpMirror", {{"eid", AttrType::kLong},
                    {"salary", AttrType::kLong},
                    {"dept", AttrType::kLong}}));
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(mirror->Insert({Value(int64_t{i}), Value(int64_t{i % 200}),
                                Value(int64_t{i % 10})})
                    .ok());
  }
  EXPECT_TRUE(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(fin),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

constexpr char kPointQuery[] = "SELECT eid FROM Emp WHERE salary = 5";
constexpr char kJoinQuery[] =
    "SELECT eid, budget FROM Emp, Dept "
    "WHERE Emp.dept = Dept.did AND salary = 10";

TEST(CanonicalizeTest, ConstantsLiftIntoSlots) {
  auto med = BuildFederation();
  auto a = med->Analyze("SELECT eid FROM Emp WHERE salary = 5");
  auto b = med->Analyze("SELECT eid FROM Emp WHERE salary = 199");
  ASSERT_TRUE(a.ok() && b.ok());
  const CanonicalQuery ca = Canonicalize(*a);
  const CanonicalQuery cb = Canonicalize(*b);
  // Same shape, different constants: identical canonical text.
  EXPECT_EQ(ca.text, cb.text);
  ASSERT_EQ(ca.constants.size(), 1u);
  ASSERT_EQ(cb.constants.size(), 1u);
  EXPECT_EQ(ca.constants[0], Value(int64_t{5}));
  EXPECT_EQ(cb.constants[0], Value(int64_t{199}));
  ASSERT_EQ(ca.slots.size(), 1u);
  EXPECT_EQ(ca.slots[0].op, algebra::CmpOp::kEq);
}

TEST(CanonicalizeTest, ShapeChangesChangeTheText) {
  auto med = BuildFederation();
  auto eq = med->Analyze("SELECT eid FROM Emp WHERE salary = 5");
  auto le = med->Analyze("SELECT eid FROM Emp WHERE salary <= 5");
  auto join = med->Analyze(kJoinQuery);
  ASSERT_TRUE(eq.ok() && le.ok() && join.ok());
  EXPECT_NE(Canonicalize(*eq).text, Canonicalize(*le).text);
  EXPECT_NE(Canonicalize(*eq).text, Canonicalize(*join).text);
}

TEST(PlanCacheTest, SecondIdenticalQueryHits) {
  auto med = BuildFederation();
  auto first = med->Query(kPointQuery);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cache_hit);
  EXPECT_EQ(med->plan_cache()->stats().insertions, 1);

  auto second = med->Query(kPointQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->plan_cache_hit);
  EXPECT_EQ(med->plan_cache()->stats().hits, 1);
  // The replayed template is the same winning plan.
  EXPECT_EQ(second->plan_text, first->plan_text);
  EXPECT_EQ(second->plan_fingerprint, first->plan_fingerprint);
  EXPECT_EQ(second->tuples.size(), first->tuples.size());
}

TEST(PlanCacheTest, HitSubstitutesNewConstants) {
  auto med = BuildFederation();
  ASSERT_TRUE(med->Query(kPointQuery).ok());

  // Same shape, different constant: a hit that must answer the *new*
  // query, not replay the old constant.
  auto hit = med->Query("SELECT eid FROM Emp WHERE salary = 150");
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  EXPECT_NE(hit->plan_text.find("150"), std::string::npos) << hit->plan_text;

  // Reference answer from a cache-less mediator.
  MediatorOptions off;
  off.plan_cache_capacity = 0;
  auto reference = BuildFederation(off)->Query(
      "SELECT eid FROM Emp WHERE salary = 150");
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(hit->tuples, reference->tuples);
}

TEST(PlanCacheTest, DifferentShapeMisses) {
  auto med = BuildFederation();
  ASSERT_TRUE(med->Query(kPointQuery).ok());
  auto other = med->Query("SELECT eid FROM Emp WHERE salary <= 5");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->plan_cache_hit);
  EXPECT_EQ(med->plan_cache()->stats().hits, 0);
  EXPECT_EQ(med->plan_cache()->stats().insertions, 2);
}

TEST(PlanCacheTest, ReRegisterWrapperInvalidatesItsTemplates) {
  auto med = BuildFederation();
  ASSERT_TRUE(med->Query(kPointQuery).ok());  // touches hr only
  ASSERT_TRUE(med->Query(kJoinQuery).ok());   // touches hr and fin
  EXPECT_EQ(med->plan_cache()->size(), 2u);

  ASSERT_TRUE(med->ReRegisterWrapper("fin").ok());
  // The join template submitted to fin and is dropped eagerly. The
  // hr-only template stays resident, but the refresh moved the catalog
  // version (statistics were re-pulled), so the next point query plans
  // fresh against the new statistics rather than replaying it.
  EXPECT_EQ(med->plan_cache()->size(), 1u);
  EXPECT_EQ(med->plan_cache()->stats().invalidations, 1);
  auto again = med->Query(kPointQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->plan_cache_hit);
  // ...and the freshly planned template is cached under the new version.
  auto once_more = med->Query(kPointQuery);
  ASSERT_TRUE(once_more.ok());
  EXPECT_TRUE(once_more->plan_cache_hit);
}

TEST(PlanCacheTest, DeclareEquivalentDropsEverything) {
  auto med = BuildFederation();
  ASSERT_TRUE(med->Query(kPointQuery).ok());
  ASSERT_TRUE(med->Query(kJoinQuery).ok());
  EXPECT_EQ(med->plan_cache()->size(), 2u);

  // EmpMirror (same schema as Emp, registered on fin) is a legal
  // replica; declaring the equivalence reshapes the answerable plan
  // space, so every template is dropped.
  ASSERT_TRUE(med->DeclareEquivalent("Emp", "EmpMirror").ok());
  EXPECT_EQ(med->plan_cache()->size(), 0u);
  EXPECT_EQ(med->plan_cache()->stats().invalidations, 2);
}

TEST(PlanCacheTest, BreakerTransitionInvalidatesTheSourcesTemplates) {
  auto med = BuildFederation();
  ASSERT_TRUE(med->Query(kPointQuery).ok());
  EXPECT_EQ(med->plan_cache()->size(), 1u);

  // Trip hr's breaker directly: the closed -> open transition must drop
  // every cached template that submits to hr.
  const int threshold = med->options().breaker.failure_threshold;
  for (int i = 0; i < threshold; ++i) {
    med->health()->RecordFailure("hr", med->sim_now_ms());
  }
  EXPECT_EQ(med->plan_cache()->size(), 0u);
  EXPECT_GE(med->plan_cache()->stats().invalidations, 1);
}

TEST(PlanCacheTest, LruEvictsTheColdestTemplate) {
  MediatorOptions opts;
  opts.plan_cache_capacity = 2;
  auto med = BuildFederation(opts);
  ASSERT_TRUE(med->Query("SELECT eid FROM Emp WHERE salary = 1").ok());
  ASSERT_TRUE(med->Query("SELECT eid FROM Emp WHERE salary <= 2").ok());
  // Touch the first shape so the second becomes coldest.
  ASSERT_TRUE(med->Query("SELECT eid FROM Emp WHERE salary = 3").ok());
  // A third shape evicts the <= template.
  ASSERT_TRUE(med->Query(kJoinQuery).ok());
  EXPECT_EQ(med->plan_cache()->size(), 2u);
  EXPECT_EQ(med->plan_cache()->stats().evictions, 1);

  auto eq = med->Query("SELECT eid FROM Emp WHERE salary = 4");
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq->plan_cache_hit);  // survived
  auto le = med->Query("SELECT eid FROM Emp WHERE salary <= 9");
  ASSERT_TRUE(le.ok());
  EXPECT_FALSE(le->plan_cache_hit);  // evicted
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  MediatorOptions opts;
  opts.plan_cache_capacity = 0;
  auto med = BuildFederation(opts);
  EXPECT_FALSE(med->plan_cache()->enabled());
  for (int i = 0; i < 3; ++i) {
    auto r = med->Query(kPointQuery);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->plan_cache_hit);
  }
  EXPECT_EQ(med->plan_cache()->stats().hits, 0);
  EXPECT_EQ(med->plan_cache()->stats().insertions, 0);
  EXPECT_EQ(med->plan_cache()->size(), 0u);
}

TEST(PlanCacheTest, CountersSurfaceInTheMonitorReport) {
  auto med = BuildFederation();
  ASSERT_TRUE(med->Query(kPointQuery).ok());
  ASSERT_TRUE(med->Query(kPointQuery).ok());
  const mediator::MonitorSnapshot snap = med->MonitorReport();
  EXPECT_EQ(snap.plan_cache_size, 1u);
  EXPECT_EQ(snap.plan_cache_hits, 1);
  EXPECT_EQ(snap.plan_cache_insertions, 1);
  EXPECT_NE(snap.ToText().find("plan cache: 1/64 entries"),
            std::string::npos)
      << snap.ToText();
  EXPECT_NE(snap.ToJson().find("\"plan_cache\":{\"size\":1"),
            std::string::npos)
      << snap.ToJson();
  // Metrics registry mirrors the same counters.
  const metrics::RegistrySnapshot m = med->metrics()->TakeSnapshot();
  EXPECT_EQ(m.counters.at("disco.plancache.hits"), 1);
  EXPECT_EQ(m.counters.at("disco.plancache.misses"), 1);
  EXPECT_EQ(m.counters.at("disco.plancache.insertions"), 1);
}

}  // namespace
}  // namespace disco
