// Metrics registry: instrument semantics, log-bucket math, exports,
// and -- the registry's reason to exist -- safety under concurrent
// updates from many threads.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace disco {
namespace metrics {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(GaugeTest, SetsBothWays) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds values <= kMinUpper; bucket i holds
  // (kMinUpper * 2^(i-1), kMinUpper * 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinUpper), 0);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinUpper * 1.5), 1);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinUpper * 2), 1);
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinUpper * 2.01), 2);
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    const double upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(upper), i) << "upper bound of " << i;
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(upper, 1e300)), i + 1)
        << "just above upper bound of " << i;
  }
  // Enormous values land in the last (unbounded) bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e30), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, SnapshotStats) {
  Histogram h;
  h.Record(1.0);
  h.Record(4.0);
  h.Record(16.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 21.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 16.0);
  // Quantiles report the holding bucket's upper bound.
  EXPECT_GE(s.Quantile(0.99), 16.0);
  EXPECT_LE(s.Quantile(0.0), Histogram::BucketUpperBound(
                                 Histogram::BucketIndex(1.0)));
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0);
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  // Same name, different kind: a distinct instrument.
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(reg.gauge("x")));
}

TEST(RegistryTest, TextExportIsNameOrdered) {
  Registry reg;
  reg.counter("z.count")->Increment(2);
  reg.counter("a.count")->Increment();
  reg.gauge("m.level")->Set(1.5);
  reg.histogram("q.ms")->Record(10.0);
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("counter a.count 1"), std::string::npos) << text;
  EXPECT_NE(text.find("counter z.count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge m.level 1.500"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram q.ms"), std::string::npos) << text;
  EXPECT_LT(text.find("a.count"), text.find("z.count"));
}

TEST(RegistryTest, JsonExportContainsAllSections) {
  Registry reg;
  reg.counter("c")->Increment(7);
  reg.gauge("g")->Set(2.0);
  reg.histogram("h")->Record(1.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
}

TEST(RegistryTest, JsonExportEscapesNames) {
  // Metric names embed label values (e.g. disco.breaker.state.<source>);
  // a source name carrying quotes or backslashes must not corrupt the
  // JSON document.
  Registry reg;
  reg.counter("weird.\"quoted\".count")->Increment();
  reg.gauge("path.c:\\temp")->Set(1.0);
  reg.histogram("multi\nline")->Record(2.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"weird.\\\"quoted\\\".count\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"path.c:\\\\temp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"multi\\nline\""), std::string::npos) << json;
  // No raw (unescaped) quote or newline survives inside a name.
  EXPECT_EQ(json.find("weird.\"quoted\""), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
}

TEST(RegistryTest, OpenMetricsSanitizesHostileNames) {
  // Same hostile-name surface as the JSON export: quotes, backslashes,
  // and newlines in a metric name (label values are embedded in names)
  // must not break the line-oriented exposition format.
  Registry reg;
  reg.counter("weird.\"quoted\".count")->Increment(3);
  reg.gauge("path.c:\\temp")->Set(1.0);
  reg.histogram("multi\nline.ms")->Record(2.0);
  const std::string om = reg.ToOpenMetrics();

  // Every hostile character lands as '_' ('.' always does).
  EXPECT_NE(om.find("weird__quoted__count_total 3"), std::string::npos)
      << om;
  EXPECT_NE(om.find("path_c:_temp 1"), std::string::npos) << om;
  EXPECT_NE(om.find("multi_line_ms_count 1"), std::string::npos) << om;
  EXPECT_NE(om.find("multi_line_ms_sum 2.000"), std::string::npos) << om;

  // Nothing outside [a-zA-Z0-9_:] survives in any metric name -- every
  // sample and every # TYPE line stays parseable.
  std::istringstream lines(om);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line == "# EOF") continue;
    std::string name;
    if (line.rfind("# TYPE ", 0) == 0) {
      name = line.substr(7, line.find(' ', 7) - 7);
    } else {
      name = line.substr(0, line.find_first_of(" {"));
    }
    ASSERT_FALSE(name.empty()) << line;
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok) << "raw '" << c << "' in line: " << line;
    }
  }
  EXPECT_NE(om.find("# EOF\n"), std::string::npos);
}

TEST(RegistryTest, OpenMetricsExportIsDeterministic) {
  // Two independently built registries with the same recorded values
  // render byte-identical expositions (name-ordered, no timestamps).
  auto build = []() {
    Registry reg;
    reg.counter("z.count")->Increment(2);
    reg.counter("a.\"hostile\".count")->Increment(5);
    reg.gauge("m.level")->Set(1.5);
    reg.histogram("q.ms")->Record(10.0);
    reg.histogram("q.ms")->Record(0.25);
    return reg.ToOpenMetrics();
  };
  const std::string first = build();
  const std::string second = build();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(RegistryTest, SnapshotMatchesInstruments) {
  Registry reg;
  reg.counter("c")->Increment(3);
  reg.histogram("h")->Record(5.0);
  RegistrySnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 3);
  EXPECT_EQ(snap.histograms.at("h").count, 1);
}

// The concurrency contract: N threads hammering the same instruments
// (and racing find-or-create) lose no updates.
TEST(RegistryTest, ConcurrentIncrementsLoseNothing) {
  for (int num_threads : {2, 4, 8}) {
    Registry reg;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&reg, t]() {
        for (int i = 0; i < kPerThread; ++i) {
          reg.counter("shared.count")->Increment();
          reg.histogram("shared.ms")->Record(static_cast<double>(i % 100) +
                                             0.5);
          reg.gauge("per.thread." + std::to_string(t))
              ->Set(static_cast<double>(i));
        }
      });
    }
    for (auto& th : threads) th.join();

    const int64_t expected =
        static_cast<int64_t>(num_threads) * kPerThread;
    EXPECT_EQ(reg.counter("shared.count")->value(), expected)
        << num_threads << " threads";
    Histogram::Snapshot s = reg.histogram("shared.ms")->TakeSnapshot();
    EXPECT_EQ(s.count, expected) << num_threads << " threads";
    int64_t bucketed = 0;
    for (int64_t b : s.buckets) bucketed += b;
    EXPECT_EQ(bucketed, expected);
    EXPECT_DOUBLE_EQ(s.min, 0.5);
    EXPECT_DOUBLE_EQ(s.max, 99.5);
  }
}

}  // namespace
}  // namespace metrics
}  // namespace disco
