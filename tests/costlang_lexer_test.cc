#include "costlang/lexer.h"

#include <gtest/gtest.h>

namespace disco {
namespace costlang {
namespace {

std::vector<TokenType> Types(const std::string& input) {
  auto tokens = Tokenize(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenType> out;
  for (const Token& t : *tokens) out.push_back(t.type);
  return out;
}

TEST(CostLangLexerTest, BasicTokens) {
  EXPECT_EQ(Types("a + b"), (std::vector<TokenType>{TokenType::kIdentifier,
                                                    TokenType::kPlus,
                                                    TokenType::kIdentifier,
                                                    TokenType::kEof}));
  EXPECT_EQ(Types("( ) { } , ; ."),
            (std::vector<TokenType>{
                TokenType::kLParen, TokenType::kRParen, TokenType::kLBrace,
                TokenType::kRBrace, TokenType::kComma, TokenType::kSemicolon,
                TokenType::kDot, TokenType::kEof}));
}

TEST(CostLangLexerTest, Numbers) {
  auto tokens = Tokenize("12 3.5 1e3 2.5e-2 0.7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 12);
  EXPECT_DOUBLE_EQ((*tokens)[1].number, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 1000);
  EXPECT_DOUBLE_EQ((*tokens)[3].number, 0.025);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 0.7);
}

TEST(CostLangLexerTest, Comparisons) {
  EXPECT_EQ(Types("= == != <> < <= > >="),
            (std::vector<TokenType>{TokenType::kEq, TokenType::kEq,
                                    TokenType::kNe, TokenType::kNe,
                                    TokenType::kLt, TokenType::kLe,
                                    TokenType::kGt, TokenType::kGe,
                                    TokenType::kEof}));
}

TEST(CostLangLexerTest, Strings) {
  auto tokens = Tokenize("'single' \"double\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "single");
  EXPECT_EQ((*tokens)[1].text, "double");
}

TEST(CostLangLexerTest, Comments) {
  auto tokens = Tokenize("a // line comment\n# hash comment\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, eof
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 3);
}

TEST(CostLangLexerTest, LineTracking) {
  auto tokens = Tokenize("a\nb\n\nc");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[2].line, 4);
}

TEST(CostLangLexerTest, Errors) {
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a @ b").status().IsParseError());
  EXPECT_TRUE(Tokenize("a ! b").status().IsParseError());
}

TEST(CostLangLexerTest, IsIdentCaseInsensitive) {
  auto tokens = Tokenize("TotalTime");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsIdent("totaltime"));
  EXPECT_TRUE((*tokens)[0].IsIdent("TOTALTIME"));
  EXPECT_FALSE((*tokens)[0].IsIdent("TimeFirst"));
}

}  // namespace
}  // namespace costlang
}  // namespace disco
