// SourceHealthRegistry: the circuit breaker state machine over the
// simulated clock -- closed, open, half-open probe, and back.

#include "mediator/source_health.h"

#include <gtest/gtest.h>

namespace disco {
namespace mediator {
namespace {

SourceHealthOptions FastBreaker() {
  SourceHealthOptions o;
  o.failure_threshold = 3;
  o.cooldown_ms = 1000;
  return o;
}

TEST(SourceHealthTest, UnknownSourcesStartClosed) {
  SourceHealthRegistry reg;
  EXPECT_EQ(reg.StateAt("s", 0), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowSubmit("s", 0));
  EXPECT_EQ(reg.Health("s").total_failures, 0);
  EXPECT_TRUE(reg.OpenSources(0).empty());
}

TEST(SourceHealthTest, OpensAfterConsecutiveFailures) {
  SourceHealthRegistry reg(FastBreaker());
  reg.RecordFailure("s", 10);
  reg.RecordFailure("s", 20);
  EXPECT_EQ(reg.StateAt("s", 20), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowSubmit("s", 20));
  reg.RecordFailure("s", 30);  // third consecutive: trip
  EXPECT_EQ(reg.StateAt("s", 30), BreakerState::kOpen);
  EXPECT_FALSE(reg.AllowSubmit("s", 40));
  EXPECT_EQ(reg.Health("s").rejected_submits, 1);
  EXPECT_EQ(reg.OpenSources(40), std::vector<std::string>{"s"});
}

TEST(SourceHealthTest, SuccessResetsTheConsecutiveCount) {
  SourceHealthRegistry reg(FastBreaker());
  reg.RecordFailure("s", 10);
  reg.RecordFailure("s", 20);
  reg.RecordSuccess("s", 30);  // streak broken
  reg.RecordFailure("s", 40);
  reg.RecordFailure("s", 50);
  EXPECT_EQ(reg.StateAt("s", 50), BreakerState::kClosed);
  reg.RecordFailure("s", 60);
  EXPECT_EQ(reg.StateAt("s", 60), BreakerState::kOpen);
  SourceHealth h = reg.Health("s");
  EXPECT_EQ(h.total_failures, 5);
  EXPECT_EQ(h.total_successes, 1);
  EXPECT_EQ(h.consecutive_failures, 3);
  EXPECT_DOUBLE_EQ(h.opened_at_ms, 60);
}

TEST(SourceHealthTest, CooldownAdmitsOneProbeThatRecloses) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_FALSE(reg.AllowSubmit("s", 500));  // still cooling down
  // Cooldown elapsed (opened at 30, cooldown 1000): effective state is
  // half-open and the next submit goes through as a probe.
  EXPECT_EQ(reg.StateAt("s", 1030), BreakerState::kHalfOpen);
  EXPECT_TRUE(reg.AllowSubmit("s", 1030));
  EXPECT_TRUE(reg.OpenSources(1030).empty());  // probe-ready, not avoided
  reg.RecordSuccess("s", 1040);
  EXPECT_EQ(reg.StateAt("s", 1040), BreakerState::kClosed);
  EXPECT_EQ(reg.Health("s").consecutive_failures, 0);
}

TEST(SourceHealthTest, FailedProbeReopensForAnotherCooldown) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_TRUE(reg.AllowSubmit("s", 1500));  // probe admitted
  reg.RecordFailure("s", 1510);             // probe failed: re-open at once
  EXPECT_EQ(reg.StateAt("s", 1510), BreakerState::kOpen);
  EXPECT_FALSE(reg.AllowSubmit("s", 2000));  // new cooldown from 1510
  EXPECT_TRUE(reg.AllowSubmit("s", 2600));   // 1510 + 1000 elapsed
}

TEST(SourceHealthTest, SourceNamesAreCaseInsensitive) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("Oracle", t);
  EXPECT_EQ(reg.StateAt("ORACLE", 30), BreakerState::kOpen);
  EXPECT_FALSE(reg.AllowSubmit("oracle", 40));
  EXPECT_EQ(reg.OpenSources(40), std::vector<std::string>{"oracle"});
}

TEST(SourceHealthTest, ResetForgetsEverything) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_EQ(reg.StateAt("s", 30), BreakerState::kOpen);
  reg.Reset("s");
  EXPECT_EQ(reg.StateAt("s", 30), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowSubmit("s", 30));
  EXPECT_EQ(reg.Health("s").total_failures, 0);
}

TEST(SourceHealthTest, StateNamesRender) {
  EXPECT_STREQ(BreakerStateToString(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kHalfOpen), "half-open");
}

TEST(SourceHealthTest, HalfOpenAdmitsExactlyOneProbePerCooldown) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_TRUE(reg.AllowSubmit("s", 1100));  // the probe
  // Concurrent submits racing the in-flight probe are rejected, not
  // admitted as extra probes.
  EXPECT_FALSE(reg.AllowSubmit("s", 1101));
  EXPECT_FALSE(reg.AllowSubmit("s", 1500));
  EXPECT_EQ(reg.Health("s").rejected_submits, 2);
  // ...until the probe resolves: failure re-opens, and only after the
  // next cooldown is one more probe admitted.
  reg.RecordFailure("s", 1510);
  EXPECT_FALSE(reg.AllowSubmit("s", 1600));
  EXPECT_TRUE(reg.AllowSubmit("s", 2600));
  EXPECT_FALSE(reg.AllowSubmit("s", 2601));  // again: one per cooldown
}

TEST(SourceHealthTest, LostProbeForfeitsItsSlotAfterOneCooldown) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_TRUE(reg.AllowSubmit("s", 1100));  // probe admitted...
  // ...but never resolves (cancelled / deadline-expired submit). The
  // breaker must not wedge half-open: after a full cooldown with no
  // verdict the slot is forfeited and a new probe goes through.
  EXPECT_FALSE(reg.AllowSubmit("s", 2050));
  EXPECT_TRUE(reg.AllowSubmit("s", 2150));  // 1100 + 1000 elapsed
  reg.RecordSuccess("s", 2160);
  EXPECT_EQ(reg.StateAt("s", 2160), BreakerState::kClosed);
}

TEST(SourceHealthTest, FlapDampingDoublesTheCooldown) {
  SourceHealthOptions o = FastBreaker();
  o.max_cooldown_doublings = 2;
  SourceHealthRegistry reg(o);
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  EXPECT_DOUBLE_EQ(reg.EffectiveCooldownMs("s"), 1000);
  double now = 30;
  // First failed probe keeps the base cooldown; from the second on it
  // doubles per failure, capped at 2^max_cooldown_doublings.
  const double expected[] = {1000, 2000, 4000, 4000, 4000};
  for (double cooldown : expected) {
    now = reg.Health("s").opened_at_ms + reg.EffectiveCooldownMs("s");
    ASSERT_FALSE(reg.AllowSubmit("s", now - 1));
    ASSERT_TRUE(reg.AllowSubmit("s", now));
    reg.RecordFailure("s", now + 1);
    EXPECT_DOUBLE_EQ(reg.EffectiveCooldownMs("s"), cooldown)
        << "after probe failure at " << now + 1;
  }
  EXPECT_EQ(reg.Health("s").consecutive_probe_failures, 5);
  // A successful probe resets the damping.
  now = reg.Health("s").opened_at_ms + reg.EffectiveCooldownMs("s");
  ASSERT_TRUE(reg.AllowSubmit("s", now));
  reg.RecordSuccess("s", now + 1);
  EXPECT_EQ(reg.Health("s").consecutive_probe_failures, 0);
  EXPECT_DOUBLE_EQ(reg.EffectiveCooldownMs("s"), 1000);
}

TEST(SourceHealthTest, PersistentMalformationOpensAsLyingSource) {
  SourceHealthRegistry reg(FastBreaker());  // malformed_threshold = 3
  reg.RecordMalformed("s", 10, 4);
  reg.RecordMalformed("s", 20, 2);
  EXPECT_EQ(reg.StateAt("s", 20), BreakerState::kClosed);
  EXPECT_FALSE(reg.Health("s").lying);
  reg.RecordMalformed("s", 30, 1);  // third consecutive: trip as lying
  SourceHealth h = reg.Health("s");
  EXPECT_EQ(h.state, BreakerState::kOpen);
  EXPECT_TRUE(h.lying);
  EXPECT_EQ(h.malformed_batches, 3);
  EXPECT_EQ(h.quarantined_rows, 7);
  EXPECT_FALSE(reg.AllowSubmit("s", 40));
  // The probe that re-closes the breaker clears the lying flag.
  ASSERT_TRUE(reg.AllowSubmit("s", 1100));
  reg.RecordSuccess("s", 1110);
  EXPECT_FALSE(reg.Health("s").lying);
  EXPECT_EQ(reg.StateAt("s", 1110), BreakerState::kClosed);
}

TEST(SourceHealthTest, WellFormedBatchResetsTheMalformedStreak) {
  SourceHealthRegistry reg(FastBreaker());
  reg.RecordMalformed("s", 10, 1);
  reg.RecordMalformed("s", 20, 1);
  reg.RecordWellFormed("s", 30);  // streak broken
  reg.RecordMalformed("s", 40, 1);
  reg.RecordMalformed("s", 50, 1);
  EXPECT_EQ(reg.StateAt("s", 50), BreakerState::kClosed);
  EXPECT_FALSE(reg.Health("s").lying);
  EXPECT_EQ(reg.Health("s").malformed_batches, 4);
  // Unknown sources: RecordWellFormed must not materialize state.
  reg.RecordWellFormed("ghost", 60);
  EXPECT_EQ(reg.Health("ghost").total_successes, 0);
}

}  // namespace
}  // namespace mediator
}  // namespace disco
