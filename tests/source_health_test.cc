// SourceHealthRegistry: the circuit breaker state machine over the
// simulated clock -- closed, open, half-open probe, and back.

#include "mediator/source_health.h"

#include <gtest/gtest.h>

namespace disco {
namespace mediator {
namespace {

SourceHealthOptions FastBreaker() {
  SourceHealthOptions o;
  o.failure_threshold = 3;
  o.cooldown_ms = 1000;
  return o;
}

TEST(SourceHealthTest, UnknownSourcesStartClosed) {
  SourceHealthRegistry reg;
  EXPECT_EQ(reg.StateAt("s", 0), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowSubmit("s", 0));
  EXPECT_EQ(reg.Health("s").total_failures, 0);
  EXPECT_TRUE(reg.OpenSources(0).empty());
}

TEST(SourceHealthTest, OpensAfterConsecutiveFailures) {
  SourceHealthRegistry reg(FastBreaker());
  reg.RecordFailure("s", 10);
  reg.RecordFailure("s", 20);
  EXPECT_EQ(reg.StateAt("s", 20), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowSubmit("s", 20));
  reg.RecordFailure("s", 30);  // third consecutive: trip
  EXPECT_EQ(reg.StateAt("s", 30), BreakerState::kOpen);
  EXPECT_FALSE(reg.AllowSubmit("s", 40));
  EXPECT_EQ(reg.Health("s").rejected_submits, 1);
  EXPECT_EQ(reg.OpenSources(40), std::vector<std::string>{"s"});
}

TEST(SourceHealthTest, SuccessResetsTheConsecutiveCount) {
  SourceHealthRegistry reg(FastBreaker());
  reg.RecordFailure("s", 10);
  reg.RecordFailure("s", 20);
  reg.RecordSuccess("s", 30);  // streak broken
  reg.RecordFailure("s", 40);
  reg.RecordFailure("s", 50);
  EXPECT_EQ(reg.StateAt("s", 50), BreakerState::kClosed);
  reg.RecordFailure("s", 60);
  EXPECT_EQ(reg.StateAt("s", 60), BreakerState::kOpen);
  SourceHealth h = reg.Health("s");
  EXPECT_EQ(h.total_failures, 5);
  EXPECT_EQ(h.total_successes, 1);
  EXPECT_EQ(h.consecutive_failures, 3);
  EXPECT_DOUBLE_EQ(h.opened_at_ms, 60);
}

TEST(SourceHealthTest, CooldownAdmitsOneProbeThatRecloses) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_FALSE(reg.AllowSubmit("s", 500));  // still cooling down
  // Cooldown elapsed (opened at 30, cooldown 1000): effective state is
  // half-open and the next submit goes through as a probe.
  EXPECT_EQ(reg.StateAt("s", 1030), BreakerState::kHalfOpen);
  EXPECT_TRUE(reg.AllowSubmit("s", 1030));
  EXPECT_TRUE(reg.OpenSources(1030).empty());  // probe-ready, not avoided
  reg.RecordSuccess("s", 1040);
  EXPECT_EQ(reg.StateAt("s", 1040), BreakerState::kClosed);
  EXPECT_EQ(reg.Health("s").consecutive_failures, 0);
}

TEST(SourceHealthTest, FailedProbeReopensForAnotherCooldown) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_TRUE(reg.AllowSubmit("s", 1500));  // probe admitted
  reg.RecordFailure("s", 1510);             // probe failed: re-open at once
  EXPECT_EQ(reg.StateAt("s", 1510), BreakerState::kOpen);
  EXPECT_FALSE(reg.AllowSubmit("s", 2000));  // new cooldown from 1510
  EXPECT_TRUE(reg.AllowSubmit("s", 2600));   // 1510 + 1000 elapsed
}

TEST(SourceHealthTest, SourceNamesAreCaseInsensitive) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("Oracle", t);
  EXPECT_EQ(reg.StateAt("ORACLE", 30), BreakerState::kOpen);
  EXPECT_FALSE(reg.AllowSubmit("oracle", 40));
  EXPECT_EQ(reg.OpenSources(40), std::vector<std::string>{"oracle"});
}

TEST(SourceHealthTest, ResetForgetsEverything) {
  SourceHealthRegistry reg(FastBreaker());
  for (double t : {10.0, 20.0, 30.0}) reg.RecordFailure("s", t);
  ASSERT_EQ(reg.StateAt("s", 30), BreakerState::kOpen);
  reg.Reset("s");
  EXPECT_EQ(reg.StateAt("s", 30), BreakerState::kClosed);
  EXPECT_TRUE(reg.AllowSubmit("s", 30));
  EXPECT_EQ(reg.Health("s").total_failures, 0);
}

TEST(SourceHealthTest, StateNamesRender) {
  EXPECT_STREQ(BreakerStateToString(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace mediator
}  // namespace disco
