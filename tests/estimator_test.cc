// Semantics of the Figure 11 cost evaluation algorithm: scope selection,
// min-wins conflict resolution, graceful per-variable fallback, required
// variable propagation, pruning, and the history extensions.

#include "costmodel/estimator.h"

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "costlang/compiler.h"
#include "costmodel/generic_model.h"

namespace disco {
namespace costmodel {
namespace {

using algebra::CmpOp;
using algebra::Scan;
using algebra::Select;
using algebra::Submit;

class EstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(InstallGenericModel(&registry_, params_).ok());
    ASSERT_TRUE(catalog_.RegisterSource("src").ok());
    CollectionSchema schema("Employee", {{"salary", AttrType::kLong},
                                         {"name", AttrType::kString}});
    CollectionStats stats;
    stats.extent = ExtentStats{10000, 1000000, 100};
    AttributeStats salary;
    salary.indexed = true;
    salary.count_distinct = 100;
    salary.min = Value(int64_t{0});
    salary.max = Value(int64_t{99});
    stats.attributes["salary"] = salary;
    ASSERT_TRUE(catalog_.RegisterCollection("src", schema, stats).ok());
  }

  void AddWrapperRules(const std::string& text) {
    costlang::CompileSchema cs;
    cs.AddCollection("Employee", {"salary", "name"});
    auto rules = costlang::CompileRuleText(text, cs);
    ASSERT_TRUE(rules.ok()) << rules.status().ToString();
    ASSERT_TRUE(registry_.AddWrapperRules("src", std::move(*rules)).ok());
  }

  Result<PlanEstimate> Estimate(const algebra::Operator& plan,
                                const EstimateOptions& options = {}) {
    CostEstimator est(&registry_, &catalog_, history_);
    return est.EstimateAt(plan, "src", options);
  }

  CalibrationParams params_;
  RuleRegistry registry_;
  Catalog catalog_;
  const HistoryManager* history_ = nullptr;
};

TEST_F(EstimatorTest, ScanLeafReadsCatalogStatistics) {
  auto est = Estimate(*Scan("Employee"));
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_DOUBLE_EQ(est->root.count_object(), 10000);
  EXPECT_DOUBLE_EQ(est->root.total_size(), 1000000);
  EXPECT_DOUBLE_EQ(est->root.object_size(), 100);
  EXPECT_GT(est->root.total_time(), 0);
}

TEST_F(EstimatorTest, UnknownCollectionFails) {
  auto est = Estimate(*Scan("Ghost"));
  EXPECT_FALSE(est.ok());
}

TEST_F(EstimatorTest, MostSpecificRuleWinsPerVariable) {
  AddWrapperRules(
      "select(C, P) { TotalTime = 100; }\n"
      "select(Employee, P) { TotalTime = 50; }\n"
      "select(Employee, salary = V) { TotalTime = 25; }\n"
      "select(Employee, salary = 7) { TotalTime = 10; }\n");
  auto make = [&](int64_t v) {
    return Select(Scan("Employee"), "salary", CmpOp::kEq, Value(v));
  };
  // salary = 7 matches the most specific (value-bound) rule.
  auto est = Estimate(*make(7));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 10);
  // salary = 8 falls back to the attribute-bound rule.
  est = Estimate(*make(8));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 25);
  // name = 'x' falls to the collection-scope rule.
  auto name_sel = Select(Scan("Employee"), "name", CmpOp::kEq, Value("x"));
  est = Estimate(*name_sel);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 50);
}

TEST_F(EstimatorTest, MinWinsAcrossEqualLevelRules) {
  AddWrapperRules(
      "select(Employee, P) { TotalTime = 80; }\n"
      "select(Employee, P) { TotalTime = 30; }\n");
  auto est = Estimate(
      *Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{1})));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 30);
}

TEST_F(EstimatorTest, TieBreakFirstOnlyOption) {
  AddWrapperRules(
      "select(Employee, P) { TotalTime = 80; }\n"
      "select(Employee, P) { TotalTime = 30; }\n");
  EstimateOptions options;
  options.tie_break_first_only = true;
  auto est = Estimate(
      *Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{1})),
      options);
  ASSERT_TRUE(est.ok());
  // Registration order wins: the first rule (80).
  EXPECT_DOUBLE_EQ(est->root.total_time(), 80);
}

TEST_F(EstimatorTest, MissingVariablesFallThroughScopes) {
  // The wrapper rule computes only TotalTime; the generic model supplies
  // CountObject etc. (paper: "Default formulas ... are used in this
  // case").
  AddWrapperRules("select(Employee, P) { TotalTime = 5; }\n");
  auto est = Estimate(
      *Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{1})));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 5);
  // Generic: 10000 / CountDistinct(100) = 100.
  EXPECT_DOUBLE_EQ(est->root.count_object(), 100);
}

TEST_F(EstimatorTest, SelfVariableDependenciesResolve) {
  // TotalTime (wrapper rule) uses CountObject, which only the generic
  // model computes -- the worklist must pull it in.
  AddWrapperRules(
      "select(Employee, P) { TotalTime = CountObject * 2; }\n");
  auto est = Estimate(
      *Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{1})));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 200);  // 100 * 2
}

TEST_F(EstimatorTest, RuleLocalsEvaluatePerNode) {
  AddWrapperRules(
      "select(Employee, salary <= V) {\n"
      "  Fraction = (V - Employee.salary.Min)\n"
      "           / (Employee.salary.Max - Employee.salary.Min);\n"
      "  CountObject = Employee.CountObject * Fraction;\n"
      "  TotalTime = CountObject * 2;\n"
      "}\n");
  auto est = Estimate(
      *Select(Scan("Employee"), "salary", CmpOp::kLe, Value(int64_t{49})));
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_NEAR(est->root.count_object(), 10000 * 49.0 / 99.0, 0.5);
  EXPECT_NEAR(est->root.total_time(), 2 * 10000 * 49.0 / 99.0, 1.0);
}

TEST_F(EstimatorTest, SubmitSwitchesScopeContext) {
  AddWrapperRules("scan(C) { TotalTime = 7; }\n");
  CostEstimator est(&registry_, &catalog_);
  // Through submit, the wrapper rule applies and submit adds
  // communication (latency 50 + 0.01 * 1000000 = 10050).
  auto plan = Submit("src", Scan("Employee"));
  auto r = est.Estimate(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->root.total_time(), 7 + 50 + 10000, 1e-6);
}

TEST_F(EstimatorTest, RequiredVariablePropagationSkipsWork) {
  AddWrapperRules(
      "select(Employee, P) {\n"
      "  CountObject = 1; ObjectSize = 1; TotalSize = 1;\n"
      "  TimeFirst = 1; TimeNext = 1; TotalTime = 1;\n"
      "}\n");
  auto plan =
      Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{1}));

  EstimateOptions with;
  with.propagate_required_vars = true;
  auto r1 = Estimate(*plan, with);
  ASSERT_TRUE(r1.ok());
  // The constant rule needs nothing from the scan: recursion is cut.
  EXPECT_EQ(r1->nodes_visited, 1);

  EstimateOptions without;
  without.propagate_required_vars = false;
  auto r2 = Estimate(*plan, without);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->nodes_visited, 2);
  EXPECT_GT(r2->formulas_evaluated, r1->formulas_evaluated);
  // Same answer either way.
  EXPECT_DOUBLE_EQ(r1->root.total_time(), r2->root.total_time());
}

TEST_F(EstimatorTest, PruningAbortsExpensivePlans) {
  CostEstimator est(&registry_, &catalog_);
  EstimateOptions options;
  options.prune_bound = 1.0;  // everything is more expensive than 1 ms
  auto r = est.Estimate(*Submit("src", Scan("Employee")), options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->pruned);

  options.prune_bound = 1e12;
  r = est.Estimate(*Submit("src", Scan("Employee")), options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->pruned);
}

TEST_F(EstimatorTest, PruningDoesNotFireInsideSourceContexts) {
  // Inside a source, min-wins access paths can discount a child's cost
  // (an index select bypasses its scan), so subcosts there never abort
  // the estimate.
  EstimateOptions options;
  options.prune_bound = 1.0;
  auto r = Estimate(*Scan("Employee"), options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->pruned);
}

TEST_F(EstimatorTest, PruningCutsSubtreeEstimation) {
  // A deep chain of mediator-side selects over an expensive submitted
  // subquery: the abort at the submit node skips the outer selects'
  // formula evaluations.
  std::unique_ptr<algebra::Operator> plan = Submit("src", Scan("Employee"));
  for (int i = 0; i < 8; ++i) {
    plan = Select(std::move(plan), "salary", CmpOp::kGt, Value(int64_t{i}));
  }
  CostEstimator est(&registry_, &catalog_);
  auto unpruned = est.Estimate(*plan);
  ASSERT_TRUE(unpruned.ok());

  EstimateOptions options;
  options.prune_bound = 1.0;
  auto pruned = est.Estimate(*plan, options);
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned->pruned);
  EXPECT_LT(pruned->formulas_evaluated, unpruned->formulas_evaluated);
}

TEST_F(EstimatorTest, QueryScopeShortCircuits) {
  auto plan =
      Select(Scan("Employee"), "salary", CmpOp::kEq, Value(int64_t{3}));
  registry_.AddQueryCost("src", *plan,
                         CostVector::Full(9, 900, 100, 1, 0.5, 77));
  auto est = Estimate(*plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->root.total_time(), 77);
  EXPECT_DOUBLE_EQ(est->root.count_object(), 9);
  EXPECT_EQ(est->nodes_visited, 1);  // no recursion below the recorded node

  // With history disabled the recorded cost is ignored.
  EstimateOptions no_history;
  no_history.use_history = false;
  est = Estimate(*plan, no_history);
  ASSERT_TRUE(est.ok());
  EXPECT_NE(est->root.total_time(), 77);
}

TEST_F(EstimatorTest, HistoryAdjustmentScalesSubmit) {
  HistoryManager history;
  auto subquery = Scan("Employee");
  // Observed runs cost 2x the estimate of 1000.
  history.RecordExecution(&registry_, "src", *subquery, 1000,
                          CostVector::Full(10, 100, 10, 1, 1, 2000));
  EXPECT_DOUBLE_EQ(history.AdjustmentFactor("src", algebra::OpKind::kScan),
                   2.0);
  // The query-scope entry answers the exact subquery (2000 ms, 100 B);
  // the adjustment factor then scales the submit node's total:
  // (2000 + latency 50 + 0.01 * 100) * 2.
  CostEstimator with_history(&registry_, &catalog_, &history);
  auto adjusted = with_history.Estimate(*Submit("src", Scan("Employee")));
  ASSERT_TRUE(adjusted.ok());
  EXPECT_NEAR(adjusted->root.total_time(), (2000 + 50 + 1) * 2, 0.5);
}

TEST_F(EstimatorTest, GenericJoinCardinalityUsesPaperFormula) {
  ASSERT_TRUE(catalog_.RegisterCollection(
                     "src",
                     CollectionSchema("Dept", {{"dno", AttrType::kLong}}),
                     [] {
                       CollectionStats s;
                       s.extent = ExtentStats{50, 5000, 100};
                       AttributeStats dno;
                       dno.count_distinct = 50;
                       dno.min = Value(int64_t{0});
                       dno.max = Value(int64_t{49});
                       s.attributes["dno"] = dno;
                       return s;
                     }())
                  .ok());
  auto join = algebra::Join(Scan("Employee"), Scan("Dept"),
                            algebra::JoinPredicate{"salary", "dno"});
  auto est = Estimate(*join);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  // |E| * |D| / min(distinct) = 10000 * 50 / 50.
  EXPECT_DOUBLE_EQ(est->root.count_object(), 10000);
}

TEST_F(EstimatorTest, MatchAttemptsCounted) {
  auto est = Estimate(*Scan("Employee"));
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->match_attempts, 0);
}

}  // namespace
}  // namespace costmodel
}  // namespace disco
