// Parameterized property sweeps across the language stack: expression
// evaluation identities, SQL operator/type combinations, OO7 layout
// arithmetic, and Yao-formula properties.

#include <cmath>

#include <gtest/gtest.h>

#include "bench007/oo7.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "costlang/builtin_functions.h"
#include "costlang/compiler.h"
#include "costlang/vm.h"
#include "query/sql_parser.h"

namespace disco {
namespace {

/// EvalContext rejecting all node access: the swept expressions are
/// closed over constants.
class ClosedContext : public costlang::EvalContext {
 public:
  Result<double> InputVar(int, costlang::CostVarId) override {
    return Status::ExecutionError("closed");
  }
  Result<Value> InputAttrStat(int, const std::string&,
                              costlang::AttrStatId) override {
    return Status::ExecutionError("closed");
  }
  Result<double> SelfVar(costlang::CostVarId) override {
    return Status::ExecutionError("closed");
  }
  Result<Value> Binding(int) override {
    return Status::ExecutionError("closed");
  }
  Result<std::string> ImpliedAttribute() override {
    return Status::ExecutionError("closed");
  }
  Result<double> Selectivity(int, const std::optional<std::string>&,
                             const std::optional<Value>&) override {
    return Status::ExecutionError("closed");
  }
};

Result<double> EvalClosed(const std::string& expr) {
  DISCO_ASSIGN_OR_RETURN(
      costlang::CompiledRuleSet rules,
      costlang::CompileRuleText("scan(C) { TotalTime = " + expr + "; }",
                                costlang::CompileSchema()));
  ClosedContext ctx;
  return costlang::Execute(rules.rules[0].formulas[0].program, &ctx, {},
                           rules.global_values);
}

class ExprIdentitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ExprIdentitySweep, RandomArithmeticMatchesNativeEvaluation) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 5);
  // Build a random arithmetic expression together with its native value.
  // Division is kept away from zero by construction.
  double value = static_cast<double>(rng.NextInt64(1, 9));
  std::string text = StringPrintf("%d", static_cast<int>(value));
  for (int step = 0; step < 12; ++step) {
    int64_t operand = rng.NextInt64(1, 9);
    switch (rng.NextUint64(4)) {
      case 0:
        value = value + static_cast<double>(operand);
        text = StringPrintf("(%s + %lld)", text.c_str(),
                            static_cast<long long>(operand));
        break;
      case 1:
        value = value - static_cast<double>(operand);
        text = StringPrintf("(%s - %lld)", text.c_str(),
                            static_cast<long long>(operand));
        break;
      case 2:
        value = value * static_cast<double>(operand);
        text = StringPrintf("(%s * %lld)", text.c_str(),
                            static_cast<long long>(operand));
        break;
      case 3:
        value = value / static_cast<double>(operand);
        text = StringPrintf("(%s / %lld)", text.c_str(),
                            static_cast<long long>(operand));
        break;
    }
  }
  Result<double> got = EvalClosed(text);
  ASSERT_TRUE(got.ok()) << text << ": " << got.status().ToString();
  EXPECT_NEAR(*got, value, std::abs(value) * 1e-12 + 1e-12) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprIdentitySweep, ::testing::Range(0, 16));

TEST(ExprIdentityTest, AlgebraicIdentities) {
  for (const char* identity :
       {"min(3, max(3, 3))", "exp(ln(3))", "pow(sqrt(3), 2)",
        "3 * if(gt(2, 1), 1, 99)", "abs(-3)", "clamp(3, 0, 10)",
        "floor(3.9)", "ceil(2.1)", "log2(8)"}) {
    Result<double> v = EvalClosed(identity);
    ASSERT_TRUE(v.ok()) << identity;
    EXPECT_NEAR(*v, 3.0, 1e-9) << identity;
  }
}

TEST(YaoPropertyTest, MonotoneAndBounded) {
  double prev = -1;
  for (double sel = 0; sel <= 1.0; sel += 0.05) {
    double f = costlang::YaoFraction(sel, 70000, 1000);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_GE(f, prev);
    prev = f;
  }
  // More objects per page saturate faster.
  EXPECT_GT(costlang::YaoFraction(0.1, 70000, 1000),
            costlang::YaoFraction(0.1, 7000, 1000));
}

struct SqlOpCase {
  const char* op;
  algebra::CmpOp expected;
};

class SqlOperatorSweep : public ::testing::TestWithParam<SqlOpCase> {};

TEST_P(SqlOperatorSweep, AllComparisonOperatorsParse) {
  const SqlOpCase& c = GetParam();
  auto q = query::ParseSql(
      StringPrintf("SELECT a FROM T WHERE a %s 5", c.op));
  ASSERT_TRUE(q.ok()) << c.op;
  ASSERT_EQ(q->selections.size(), 1u);
  EXPECT_EQ(q->selections[0].op, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, SqlOperatorSweep,
    ::testing::Values(SqlOpCase{"=", algebra::CmpOp::kEq},
                      SqlOpCase{"!=", algebra::CmpOp::kNe},
                      SqlOpCase{"<>", algebra::CmpOp::kNe},
                      SqlOpCase{"<", algebra::CmpOp::kLt},
                      SqlOpCase{"<=", algebra::CmpOp::kLe},
                      SqlOpCase{">", algebra::CmpOp::kGt},
                      SqlOpCase{">=", algebra::CmpOp::kGe}));

class OO7LayoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(OO7LayoutSweep, PageCountMatchesPaperArithmetic) {
  bench007::OO7Config config;
  config.num_atomic_parts = GetParam();
  config.num_composite_parts = 10;
  config.connections_per_atomic = 1;
  config.num_documents = 10;
  auto src = bench007::BuildOO7Source(config);
  ASSERT_TRUE(src.ok());
  int64_t expected_pages =
      (config.num_atomic_parts + config.atomic_parts_per_page - 1) /
      config.atomic_parts_per_page;
  EXPECT_EQ((*src)->table("AtomicPart")->heap().num_pages(),
            expected_pages);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OO7LayoutSweep,
                         ::testing::Values(70, 700, 7001, 14000));

}  // namespace
}  // namespace disco
