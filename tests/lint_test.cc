#include "costlang/lint.h"

#include <gtest/gtest.h>

namespace disco {
namespace costlang {
namespace {

CompileSchema Schema() {
  CompileSchema schema;
  schema.AddCollection("Employee", {"salary", "name"});
  return schema;
}

bool HasKind(const std::vector<LintWarning>& warnings, LintKind kind) {
  for (const LintWarning& w : warnings) {
    if (w.kind == kind) return true;
  }
  return false;
}

TEST(LintTest, CleanRulesProduceNoWarnings) {
  auto w = LintRuleText(
      "define IO = 25;\n"
      "scan(C) { TotalTime = IO * (C.TotalSize / 4096); }\n"
      "select(Employee, salary = V) {\n"
      "  CountObject = Employee.CountObject\n"
      "              / Employee.salary.CountDistinct;\n"
      "  TotalTime = CountObject * 2;\n"
      "}",
      Schema());
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_TRUE(w->empty()) << (*w)[0].ToString();
}

TEST(LintTest, CompileErrorsPropagate) {
  EXPECT_TRUE(LintRuleText("scan(C) {", Schema()).status().IsParseError());
}

TEST(LintTest, DuplicatePatternFlagged) {
  auto w = LintRuleText(
      "select(Employee, P) { TotalTime = 1; }\n"
      "select(Employee, P) { TotalTime = 2; }",
      Schema());
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(HasKind(*w, LintKind::kDuplicatePattern));
  // Distinct patterns are not.
  w = LintRuleText(
      "select(Employee, P) { TotalTime = 1; }\n"
      "select(C, P) { TotalTime = 2; }",
      Schema());
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(HasKind(*w, LintKind::kDuplicatePattern));
}

TEST(LintTest, UnknownAttributeFlagged) {
  auto w = LintRuleText(
      "select(Employee, P) {\n"
      "  TotalTime = Employee.sallary.CountDistinct;\n"  // typo
      "}",
      Schema());
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(HasKind(*w, LintKind::kUnknownAttribute));
  // The message names the typo.
  bool found = false;
  for (const LintWarning& warn : *w) {
    if (warn.message.find("sallary") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, UnknownAttributeNotFlaggedForFreeCollections) {
  // With a free collection variable, the linter cannot know the schema.
  auto w = LintRuleText(
      "select(C, P) { TotalTime = C.whatever.CountDistinct; }", Schema());
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(HasKind(*w, LintKind::kUnknownAttribute));
}

TEST(LintTest, SizeOnlyRuleFlagged) {
  auto w = LintRuleText(
      "select(Employee, P) { CountObject = Employee.CountObject / 2; }",
      Schema());
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(HasKind(*w, LintKind::kSizeOnlyRule));
}

TEST(LintTest, UnusedDefineFlagged) {
  auto w = LintRuleText(
      "define Used = 1;\n"
      "define Orphan = 2;\n"
      "scan(C) { TotalTime = Used; }",
      Schema());
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(HasKind(*w, LintKind::kUnusedDefine));
  bool found = false;
  for (const LintWarning& warn : *w) {
    if (warn.message.find("Orphan") != std::string::npos) found = true;
    EXPECT_EQ(warn.message.find("'Used'"), std::string::npos);
  }
  EXPECT_TRUE(found);
}

TEST(LintTest, WarningsCarryLinesAndRender) {
  auto w = LintRuleText(
      "scan(C) { TotalTime = 1; }\n"
      "scan(C) { TotalTime = 2; }",
      Schema());
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->size(), 1u);
  EXPECT_EQ((*w)[0].line, 2);
  EXPECT_NE((*w)[0].ToString().find("duplicate-pattern"), std::string::npos);
}

}  // namespace
}  // namespace costlang
}  // namespace disco
