// Runtime log-level filtering.

#include "common/logging.h"

#include <gtest/gtest.h>

namespace disco {
namespace internal {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetMinLogSeverity(saved_); }
  LogSeverity saved_ = MinLogSeverity();
};

TEST_F(LoggingTest, ThresholdFiltersBelowMin) {
  SetMinLogSeverity(LogSeverity::kWarning);
  EXPECT_FALSE(LogSeverityEnabled(LogSeverity::kInfo));
  EXPECT_TRUE(LogSeverityEnabled(LogSeverity::kWarning));
  EXPECT_TRUE(LogSeverityEnabled(LogSeverity::kError));

  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_FALSE(LogSeverityEnabled(LogSeverity::kWarning));
  EXPECT_TRUE(LogSeverityEnabled(LogSeverity::kError));

  SetMinLogSeverity(LogSeverity::kInfo);
  EXPECT_TRUE(LogSeverityEnabled(LogSeverity::kInfo));
}

TEST_F(LoggingTest, FatalAlwaysEnabled) {
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_TRUE(LogSeverityEnabled(LogSeverity::kFatal));
}

TEST_F(LoggingTest, SuppressedMessagesAreCheap) {
  SetMinLogSeverity(LogSeverity::kError);
  // Streams into a disabled severity must not crash or emit.
  DISCO_LOG(Info) << "suppressed " << 42;
  DISCO_LOG(Warning) << "also suppressed";
}

}  // namespace
}  // namespace internal
}  // namespace disco
