// The paper's headline result (Figure 12) as an executable assertion:
// for an unclustered index scan, the wrapper-exported Yao-formula rule
// estimates the measured cost far better than the mediator's calibrated
// linear formula, across the selectivity range.

#include <cmath>

#include <gtest/gtest.h>

#include "algebra/operator.h"
#include "bench007/oo7.h"
#include "costlang/builtin_functions.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "wrapper/registration.h"

namespace disco {
namespace {

class YaoValidationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bench007::OO7Config config;
    config.num_atomic_parts = 14000;  // 200 pages, fast enough for a test
    auto source = bench007::BuildOO7Source(config);
    ASSERT_TRUE(source.ok()) << source.status().ToString();

    wrapper::SimulatedWrapper::Options options;
    options.cost_rules = bench007::Oo7YaoRuleText();
    wrapper_ = new wrapper::SimulatedWrapper(std::move(*source), options);

    catalog_ = new Catalog();
    blended_ = new costmodel::RuleRegistry();
    calibrated_ = new costmodel::RuleRegistry();
    costmodel::CalibrationParams params;
    ASSERT_TRUE(costmodel::InstallGenericModel(blended_, params).ok());
    ASSERT_TRUE(costmodel::InstallGenericModel(calibrated_, params).ok());
    optimizer::CapabilityTable caps;
    ASSERT_TRUE(
        wrapper::RegisterWrapper(wrapper_, catalog_, blended_, &caps).ok());
  }

  static void TearDownTestSuite() {
    delete wrapper_;
    delete catalog_;
    delete blended_;
    delete calibrated_;
    wrapper_ = nullptr;
  }

  static wrapper::SimulatedWrapper* wrapper_;
  static Catalog* catalog_;
  static costmodel::RuleRegistry* blended_;
  static costmodel::RuleRegistry* calibrated_;
};

wrapper::SimulatedWrapper* YaoValidationTest::wrapper_ = nullptr;
Catalog* YaoValidationTest::catalog_ = nullptr;
costmodel::RuleRegistry* YaoValidationTest::blended_ = nullptr;
costmodel::RuleRegistry* YaoValidationTest::calibrated_ = nullptr;

class YaoSweep : public YaoValidationTest,
                 public ::testing::WithParamInterface<double> {};

TEST_P(YaoSweep, YaoRuleBeatsCalibration) {
  const double sel = GetParam();
  const int64_t n = 14000;
  const int64_t cutoff = static_cast<int64_t>(sel * n) - 1;
  auto plan = algebra::Select(algebra::Scan("AtomicPart"), "id",
                              algebra::CmpOp::kLe, Value(cutoff));

  wrapper_->source()->env()->pool.Clear();
  auto measured = wrapper_->Execute(*plan);
  ASSERT_TRUE(measured.ok()) << measured.status().ToString();

  costmodel::CostEstimator calib_est(calibrated_, catalog_);
  costmodel::CostEstimator yao_est(blended_, catalog_);
  auto calib = calib_est.EstimateAt(*plan, "oo7");
  auto yao = yao_est.EstimateAt(*plan, "oo7");
  ASSERT_TRUE(calib.ok()) << calib.status().ToString();
  ASSERT_TRUE(yao.ok()) << yao.status().ToString();

  double calib_err =
      std::abs(calib->root.total_time() - measured->total_ms);
  double yao_err = std::abs(yao->root.total_time() - measured->total_ms);
  // The Yao estimate tracks the measurement within 10%...
  EXPECT_LT(yao_err / measured->total_ms, 0.10) << "sel=" << sel;
  // ...and improves on the calibrated linear estimate.
  EXPECT_LT(yao_err, calib_err) << "sel=" << sel;
}

INSTANTIATE_TEST_SUITE_P(Selectivities, YaoSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3, 0.5,
                                           0.7));

TEST_F(YaoValidationTest, CalibrationUnderestimatesAtLowSelectivity) {
  // The qualitative shape of Figure 12: at 1% selectivity the calibrated
  // formula is several times too optimistic.
  const int64_t cutoff = 139;  // 1%
  auto plan = algebra::Select(algebra::Scan("AtomicPart"), "id",
                              algebra::CmpOp::kLe, Value(cutoff));
  wrapper_->source()->env()->pool.Clear();
  auto measured = wrapper_->Execute(*plan);
  ASSERT_TRUE(measured.ok());
  costmodel::CostEstimator calib_est(calibrated_, catalog_);
  auto calib = calib_est.EstimateAt(*plan, "oo7");
  ASSERT_TRUE(calib.ok());
  EXPECT_LT(calib->root.total_time(), measured->total_ms / 2);
}

TEST_F(YaoValidationTest, MeasuredPagesFollowYaoExpectation) {
  // The physical grounding: distinct pages fetched by the unclustered
  // index scan track Yao's expectation.
  const double sel = 0.1;
  const int64_t cutoff = static_cast<int64_t>(sel * 14000) - 1;
  auto plan = algebra::Select(algebra::Scan("AtomicPart"), "id",
                              algebra::CmpOp::kLe, Value(cutoff));
  wrapper_->source()->env()->pool.Clear();
  wrapper_->source()->env()->pool.ResetStats();
  auto measured = wrapper_->Execute(*plan);
  ASSERT_TRUE(measured.ok());
  const double pages = 200.0;
  double expected_fraction =
      costlang::YaoFraction(sel, 14000, pages);
  // pages_read includes index pages; allow 15% slack.
  EXPECT_NEAR(static_cast<double>(measured->pages_read),
              expected_fraction * pages, 0.15 * pages + 10);
}

}  // namespace
}  // namespace disco
