#include "query/binder.h"

#include <gtest/gtest.h>

#include "query/sql_parser.h"

namespace disco {
namespace query {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.RegisterSource("s1").ok());
    ASSERT_TRUE(catalog_.RegisterSource("s2").ok());
    ASSERT_TRUE(
        catalog_
            .RegisterCollection(
                "s1",
                CollectionSchema("Employee", {{"id", AttrType::kLong},
                                              {"salary", AttrType::kLong},
                                              {"name", AttrType::kString},
                                              {"deptId", AttrType::kLong}}),
                {})
            .ok());
    ASSERT_TRUE(catalog_
                    .RegisterCollection(
                        "s2",
                        CollectionSchema("Dept", {{"dno", AttrType::kLong},
                                                  {"title", AttrType::kString}}),
                        {})
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterCollection(
                        "s2",
                        CollectionSchema("Audit", {{"id", AttrType::kLong},
                                                   {"score", AttrType::kDouble}}),
                        {})
                    .ok());
  }

  Result<BoundQuery> BindSql(const std::string& sql) {
    auto parsed = ParseSql(sql);
    if (!parsed.ok()) return parsed.status();
    return Bind(*parsed, catalog_);
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesRelationsAndSources) {
  auto q = BindSql("SELECT name FROM Employee WHERE salary > 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->relations.size(), 1u);
  EXPECT_EQ(q->relations[0].collection, "Employee");
  EXPECT_EQ(q->relations[0].source, "s1");
  ASSERT_EQ(q->relations[0].predicates.size(), 1u);
  EXPECT_EQ(q->relations[0].predicates[0].attribute, "salary");
  EXPECT_EQ(q->projections, (std::vector<std::string>{"name"}));
}

TEST_F(BinderTest, CaseInsensitiveNames) {
  auto q = BindSql("SELECT NAME from employee WHERE SALARY > 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->relations[0].collection, "Employee");
  EXPECT_EQ(q->relations[0].predicates[0].attribute, "salary");
}

TEST_F(BinderTest, JoinsBindToRelationIndexes) {
  auto q = BindSql(
      "SELECT name, title FROM Employee, Dept WHERE deptId = dno");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left_rel, 0);
  EXPECT_EQ(q->joins[0].left_attr, "deptId");
  EXPECT_EQ(q->joins[0].right_rel, 1);
  EXPECT_EQ(q->joins[0].right_attr, "dno");
}

TEST_F(BinderTest, QualifiedAttributesDisambiguate) {
  // Employee.id vs Audit.id: unqualified is ambiguous.
  EXPECT_TRUE(BindSql("SELECT id FROM Employee, Audit "
                      "WHERE Employee.id = Audit.id")
                  .status()
                  .IsInvalidArgument());
  auto q = BindSql(
      "SELECT Employee.id FROM Employee, Audit "
      "WHERE Employee.id = Audit.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST_F(BinderTest, UnknownNamesRejected) {
  EXPECT_TRUE(BindSql("SELECT x FROM Ghost").status().IsNotFound());
  EXPECT_TRUE(
      BindSql("SELECT ghost FROM Employee").status().IsNotFound());
  EXPECT_TRUE(BindSql("SELECT name FROM Employee WHERE ghost = 1")
                  .status()
                  .IsNotFound());
}

TEST_F(BinderTest, TypeCoercion) {
  // Double literal against a Long attribute is accepted (range compare).
  auto q = BindSql("SELECT name FROM Employee WHERE salary > 10.5");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  // Int literal against a Double attribute coerces to double.
  q = BindSql("SELECT score FROM Audit WHERE score >= 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->relations[0].predicates[0].value.is_double());
  // String against Long is rejected.
  EXPECT_TRUE(BindSql("SELECT name FROM Employee WHERE salary = 'x'")
                  .status()
                  .IsInvalidArgument());
  // Number against String is rejected.
  EXPECT_TRUE(BindSql("SELECT name FROM Employee WHERE name = 3")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BinderTest, JoinTypeMismatchRejected) {
  EXPECT_TRUE(BindSql("SELECT name FROM Employee, Dept "
                      "WHERE Employee.name = Dept.dno")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(BinderTest, CrossProductsRejected) {
  EXPECT_TRUE(
      BindSql("SELECT name FROM Employee, Dept").status().IsNotSupported());
}

TEST_F(BinderTest, SelfJoinRejected) {
  EXPECT_TRUE(BindSql("SELECT name FROM Employee, Employee "
                      "WHERE Employee.id = Employee.deptId")
                  .status()
                  .IsNotSupported());
}

TEST_F(BinderTest, AggregatesAndGrouping) {
  auto q = BindSql(
      "SELECT deptId, count(*) FROM Employee GROUP BY deptId");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->aggregate.has_value());
  EXPECT_EQ(q->aggregate->func, algebra::AggFunc::kCount);
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"deptId"}));
  EXPECT_EQ(q->projections, (std::vector<std::string>{"deptId"}));

  // Ungrouped plain attribute next to an aggregate.
  EXPECT_TRUE(BindSql("SELECT name, count(*) FROM Employee")
                  .status()
                  .IsInvalidArgument());
  // GROUP BY without aggregate.
  EXPECT_TRUE(BindSql("SELECT name FROM Employee GROUP BY name")
                  .status()
                  .IsInvalidArgument());
  // Two aggregates unsupported.
  EXPECT_TRUE(BindSql("SELECT count(*), sum(salary) FROM Employee")
                  .status()
                  .IsNotSupported());
}

TEST_F(BinderTest, OrderByBinds) {
  auto q = BindSql("SELECT name FROM Employee ORDER BY Salary DESC");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->order_by, "salary");
  EXPECT_FALSE(q->order_ascending);
}

TEST_F(BinderTest, EmptyFromRejected) {
  ParsedQuery q;
  EXPECT_TRUE(Bind(q, catalog_).status().IsInvalidArgument());
}

}  // namespace
}  // namespace query
}  // namespace disco
