// Round-trip properties: printed artifacts re-parse to equivalent
// structures (rule heads, SQL, IDL), and Mediator::Explain produces a
// coherent rendering.

#include <gtest/gtest.h>

#include "costlang/parser.h"
#include "idl/idl_parser.h"
#include "mediator/mediator.h"
#include "query/sql_parser.h"

namespace disco {
namespace {

class RuleHeadRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RuleHeadRoundTrip, ToStringReparses) {
  std::string text = std::string(GetParam()) + " { TotalTime = 1; }";
  auto first = costlang::ParseRuleSet(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = first->rules[0].head.ToString();
  auto second = costlang::ParseRuleSet(printed + " { TotalTime = 1; }");
  ASSERT_TRUE(second.ok()) << printed << ": "
                           << second.status().ToString();
  EXPECT_EQ(second->rules[0].head.ToString(), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Heads, RuleHeadRoundTrip,
    ::testing::Values("scan(C)", "select(Employee, salary = 77)",
                      "select(C, A <= V)", "select(C, name = 'Smith')",
                      "join(C1, C2, A1 = A2)", "join(Employee, Book, P)",
                      "sort(C, salary)", "dedup(C)", "union(C1, C2)",
                      "aggregate(C, F)", "submit(C)",
                      "bindjoin(C1, C2, A1 = A2)"));

class ExprRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprRoundTrip, ToStringReparsesToSameRendering) {
  auto first = costlang::ParseExpr(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = (*first)->ToString();
  auto second = costlang::ParseExpr(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ((*second)->ToString(), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, ExprRoundTrip,
    ::testing::Values("1 + 2 * 3", "(1 + 2) * 3", "-a * b + c / d",
                      "min(a, b, exp(c))", "C.TotalSize / PageSize",
                      "C.id.Max - C.id.Min",
                      "yao(selectivity(), C.CountObject, 1000)",
                      "if(gt(a, b), a, b)"));

class SqlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlRoundTrip, ToStringReparsesToSameRendering) {
  auto first = query::ParseSql(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = first->ToString();
  auto second = query::ParseSql(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(second->ToString(), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, SqlRoundTrip,
    ::testing::Values(
        "SELECT * FROM T",
        "SELECT a, b FROM T WHERE a > 1 AND b = 'x'",
        "SELECT DISTINCT a FROM T ORDER BY a DESC",
        "SELECT a, count(b) FROM T, U WHERE T.x = U.y GROUP BY a",
        "SELECT count(*) FROM T WHERE a != 3"));

TEST(IdlRoundTrip, SchemaToStringMentionsEverything) {
  auto parsed = idl::ParseInterface(
      "interface T { attribute Long a; attribute String b; }");
  ASSERT_TRUE(parsed.ok());
  std::string s = parsed->schema.ToString();
  EXPECT_NE(s.find("interface T"), std::string::npos);
  EXPECT_NE(s.find("Long a"), std::string::npos);
  EXPECT_NE(s.find("String b"), std::string::npos);
}

TEST(MediatorExplainTest, ExplainSqlEndToEnd) {
  mediator::Mediator med;
  auto src = sources::MakeRelationalSource("s");
  storage::Table* t = src->CreateTable(CollectionSchema(
      "T", {{"k", AttrType::kLong}}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t->Insert({Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE(t->CreateIndex("k").ok());
  ASSERT_TRUE(med.RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                      std::move(src),
                                      wrapper::SimulatedWrapper::Options{}))
                  .ok());
  auto text = med.Explain("SELECT k FROM T WHERE k <= 10");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("submit(@s)"), std::string::npos);
  EXPECT_NE(text->find("scan(T)"), std::string::npos);
  EXPECT_NE(text->find("TotalTime"), std::string::npos);
  EXPECT_NE(text->find("[default]"), std::string::npos);

  EXPECT_TRUE(med.Explain("SELECT nope FROM T").status().IsNotFound());
}

}  // namespace
}  // namespace disco
