// End-to-end test of the tools/replay_querylog CLI: writes a query-log
// JSONL file, invokes the real binary (path injected by CMake as
// DISCO_REPLAY_BIN), and asserts the calibration-regression exit
// status: 0 when every line replays, 1 when a replayed query fails,
// 2 on usage errors.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace disco {
namespace {

#ifndef DISCO_REPLAY_BIN
#define DISCO_REPLAY_BIN ""
#endif

/// Runs the CLI with `args`, stdout/stderr silenced, and returns its
/// exit code (-1 if it did not exit normally).
int RunReplay(const std::string& args) {
  const std::string bin = DISCO_REPLAY_BIN;
  if (bin.empty()) return -1;
  const int raw =
      std::system((bin + " " + args + " > /dev/null 2>&1").c_str());
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

std::string WriteLog(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + name;
  std::ofstream(path) << content;
  return path;
}

/// One JSONL line the replay path accepts: replays need "sql",
/// "estimated_ms", "measured_ms", and "ok".
std::string LogLine(const std::string& sql) {
  return "{\"seq\":1,\"start_ms\":0.0,\"estimated_ms\":10.0,"
         "\"measured_ms\":12.0,\"ok\":true,\"sql\":\"" +
         sql + "\"}\n";
}

TEST(ReplayCliTest, BinaryAvailable) {
  if (std::string(DISCO_REPLAY_BIN).empty()) {
    GTEST_SKIP() << "DISCO_REPLAY_BIN not provided by the build";
  }
  ASSERT_TRUE(std::ifstream(DISCO_REPLAY_BIN).good())
      << "replay binary missing: " << DISCO_REPLAY_BIN;
}

TEST(ReplayCliTest, UsageErrorExitsTwo) {
  if (std::string(DISCO_REPLAY_BIN).empty()) GTEST_SKIP();
  EXPECT_EQ(RunReplay(""), 2);
  EXPECT_EQ(RunReplay("/nonexistent/query_log.jsonl"), 2);
}

TEST(ReplayCliTest, CleanLogReplaysWithExitZero) {
  if (std::string(DISCO_REPLAY_BIN).empty()) GTEST_SKIP();
  // Valid queries against the CLI's demo federation (an OO7 source and
  // an "erp" Supplier table); comments and blank lines are skipped.
  const std::string path = WriteLog(
      "replay_clean.jsonl",
      "# flight recorder export\n\n" +
          LogLine("SELECT id FROM AtomicPart WHERE id <= 20") +
          LogLine("SELECT sid FROM Supplier WHERE region = 'east'"));
  EXPECT_EQ(RunReplay(path), 0);
  EXPECT_EQ(RunReplay(path + " --monitor"), 0);
}

TEST(ReplayCliTest, FailingQueryExitsOne) {
  if (std::string(DISCO_REPLAY_BIN).empty()) GTEST_SKIP();
  // The second line binds against a collection the demo federation does
  // not export, so its replay errors and the CLI reports regression.
  const std::string path = WriteLog(
      "replay_failing.jsonl",
      LogLine("SELECT id FROM AtomicPart WHERE id <= 20") +
          LogLine("SELECT x FROM NoSuchCollection"));
  EXPECT_EQ(RunReplay(path), 1);
}

}  // namespace
}  // namespace disco
