// DriftMonitor unit semantics: baseline freezing, single-fire breach
// latching (no alert storms), recovery re-arming, and recalibration
// recommendations. The end-to-end closed loop through the mediator is
// tests/observability_loop_test.cc.

#include "costmodel/drift.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace disco {
namespace costmodel {
namespace {

using algebra::OpKind;

DriftOptions SmallOptions() {
  DriftOptions o;
  o.quantile = 0.9;
  o.window_ms = 1000.0;
  o.window_buckets = 4;
  o.baseline_observations = 8;
  o.min_window_observations = 3;
  o.degrade_ratio = 2.0;
  return o;
}

/// Feeds `n` observations with measured = q * estimated, advancing the
/// clock by `step_ms` each.
double FeedRatio(DriftMonitor* m, double* now_ms, int n, double q,
                 double step_ms = 50.0, const std::string& source = "erp") {
  for (int i = 0; i < n; ++i) {
    *now_ms += step_ms;
    m->Observe(source, OpKind::kSelect, Scope::kDefault, 100.0, 100.0 * q,
               *now_ms);
  }
  return *now_ms;
}

TEST(DriftTest, NoEventWhileBaselineAccumulates) {
  DriftMonitor m(SmallOptions());
  double now = 0;
  FeedRatio(&m, &now, 7, /*q=*/50.0);  // absurd q, but baseline not frozen
  EXPECT_TRUE(m.events().empty());
  ASSERT_EQ(m.Cells(now).size(), 1u);
  EXPECT_FALSE(m.Cells(now)[0].baseline_frozen);
}

TEST(DriftTest, FiresExactlyOncePerBreach) {
  DriftMonitor m(SmallOptions());
  int fired = 0;
  m.SetListener([&](const DriftEvent&) { ++fired; });
  double now = 0;
  FeedRatio(&m, &now, 8, /*q=*/1.2);  // healthy baseline, frozen at 8
  ASSERT_EQ(m.Cells(now).size(), 1u);
  EXPECT_TRUE(m.Cells(now)[0].baseline_frozen);
  EXPECT_TRUE(m.events().empty());

  // Sustained degradation: q jumps to 10x. Many observations past the
  // threshold, but exactly ONE event.
  FeedRatio(&m, &now, 30, /*q=*/12.0);
  EXPECT_EQ(fired, 1);
  ASSERT_EQ(m.events().size(), 1u);
  const DriftEvent& e = m.events()[0];
  EXPECT_EQ(e.source, "erp");
  EXPECT_EQ(e.kind, OpKind::kSelect);
  EXPECT_EQ(e.scope, Scope::kDefault);
  EXPECT_GT(e.window_q, 2.0 * e.baseline_q);
  EXPECT_FALSE(e.recommendation.empty());
  EXPECT_TRUE(m.Cells(now)[0].breached);
}

TEST(DriftTest, RecoversAndReArms) {
  DriftMonitor m(SmallOptions());
  double now = 0;
  FeedRatio(&m, &now, 8, 1.2);
  FeedRatio(&m, &now, 20, 12.0);
  ASSERT_EQ(m.events().size(), 1u);

  // The model re-converges (q back to ~1); the bad samples expire from
  // the 1-second window and the cell un-latches...
  FeedRatio(&m, &now, 40, 1.1);
  EXPECT_EQ(m.events().size(), 1u);
  EXPECT_FALSE(m.Cells(now)[0].breached);

  // ...so a NEW degradation alerts again.
  FeedRatio(&m, &now, 30, 15.0);
  EXPECT_EQ(m.events().size(), 2u);
}

TEST(DriftTest, RefreshUnlatchesWhenWindowDrains) {
  DriftMonitor m(SmallOptions());
  double now = 0;
  FeedRatio(&m, &now, 8, 1.2);
  FeedRatio(&m, &now, 20, 12.0);
  ASSERT_EQ(m.events().size(), 1u);
  ASSERT_TRUE(m.Cells(now)[0].breached);
  // Simulated time passes with no observations at all: the bad window
  // empties, and Refresh() clears the latch without new samples.
  now += 10000.0;
  EXPECT_EQ(m.Refresh(now), 1);
  EXPECT_FALSE(m.Cells(now)[0].breached);
}

TEST(DriftTest, RecommendationNamesScopeAction) {
  DriftOptions opts = SmallOptions();
  DriftMonitor m(opts);
  double now = 0;
  // Wrapper-scope cell drifting -> recommend re-registration.
  for (int i = 0; i < 8; ++i) {
    now += 50;
    m.Observe("oo7", OpKind::kScan, Scope::kWrapper, 100, 110, now);
  }
  for (int i = 0; i < 10; ++i) {
    now += 50;
    m.Observe("oo7", OpKind::kScan, Scope::kWrapper, 100, 2000, now);
  }
  auto recs = m.RecommendRecalibration(now);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].key.source, "oo7");
  ASSERT_EQ(m.events().size(), 1u);
  EXPECT_NE(m.events()[0].recommendation.find("re-register wrapper 'oo7'"),
            std::string::npos)
      << m.events()[0].recommendation;
}

TEST(DriftTest, RecommendationsSortedWorstFirst) {
  DriftMonitor m(SmallOptions());
  double now = 0;
  FeedRatio(&m, &now, 8, 1.0, 50.0, "mild");
  FeedRatio(&m, &now, 8, 1.0, 50.0, "severe");
  FeedRatio(&m, &now, 10, 3.0, 50.0, "mild");
  FeedRatio(&m, &now, 10, 30.0, 50.0, "severe");
  auto recs = m.RecommendRecalibration(now);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].key.source, "severe");
  EXPECT_EQ(recs[1].key.source, "mild");
}

TEST(DriftTest, ResetBaselineForgetsSourceAndRefreezes) {
  DriftMonitor m(SmallOptions());
  double now = 0;
  FeedRatio(&m, &now, 8, 1.2);
  FeedRatio(&m, &now, 20, 12.0);
  ASSERT_EQ(m.events().size(), 1u);

  // Administrative recalibration: the new regime (q ~ 12 worth of
  // latency) becomes the fresh baseline, so it no longer alarms.
  m.ResetBaseline("ERP");  // case-insensitive
  EXPECT_TRUE(m.Cells(now).empty());
  FeedRatio(&m, &now, 20, 12.0);
  EXPECT_EQ(m.events().size(), 1u);  // no new event: 12 is the new normal
  ASSERT_EQ(m.Cells(now).size(), 1u);
  EXPECT_TRUE(m.Cells(now)[0].baseline_frozen);
  EXPECT_FALSE(m.Cells(now)[0].breached);
}

TEST(DriftTest, DisabledMonitorObservesNothing) {
  DriftOptions opts = SmallOptions();
  opts.enabled = false;
  DriftMonitor m(opts);
  double now = 0;
  FeedRatio(&m, &now, 50, 100.0);
  EXPECT_EQ(m.num_observations(), 0);
  EXPECT_TRUE(m.Cells(now).empty());
  EXPECT_TRUE(m.events().empty());
}

TEST(DriftTest, FormatReportListsWorstCellsFirst) {
  DriftMonitor m(SmallOptions());
  double now = 0;
  FeedRatio(&m, &now, 8, 1.0, 50.0, "calm");
  FeedRatio(&m, &now, 8, 1.0, 50.0, "noisy");
  FeedRatio(&m, &now, 10, 20.0, 50.0, "noisy");
  const std::string report = m.FormatReport(now, /*top_k=*/1);
  EXPECT_NE(report.find("noisy"), std::string::npos) << report;
  EXPECT_EQ(report.find("calm"), std::string::npos) << report;
  EXPECT_NE(report.find("BREACHED"), std::string::npos) << report;
}

}  // namespace
}  // namespace costmodel
}  // namespace disco
