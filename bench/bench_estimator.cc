// Ext-3: the two phase-1 optimizations of Section 4.2 --
//   (i) propagate only the *required* variables to children,
//   (ii) cut the recursion into children from which nothing is required
// -- measured by estimating deep plans with the optimization on and off.

#include <benchmark/benchmark.h>

#include <memory>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "costlang/compiler.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/registry.h"

namespace disco {
namespace {

Catalog BuildCatalog(int num_collections) {
  Catalog catalog;
  DISCO_CHECK(catalog.RegisterSource("src").ok());
  for (int i = 0; i < num_collections; ++i) {
    CollectionSchema schema(StringPrintf("C%d", i),
                            {{"a", AttrType::kLong}, {"b", AttrType::kLong}});
    CollectionStats stats;
    stats.extent = ExtentStats{10000 + i, 1000000, 100};
    AttributeStats a;
    a.indexed = (i % 2) == 0;
    a.count_distinct = 1000;
    a.min = Value(int64_t{0});
    a.max = Value(int64_t{100000});
    stats.attributes["a"] = a;
    stats.attributes["b"] = a;
    DISCO_CHECK(catalog.RegisterCollection("src", schema, stats).ok());
  }
  return catalog;
}

/// A deep plan: a left-deep join tree of `n` collections, each side
/// filtered.
std::unique_ptr<algebra::Operator> DeepPlan(int n) {
  std::unique_ptr<algebra::Operator> plan = algebra::Select(
      algebra::Scan("C0"), "a", algebra::CmpOp::kGt, Value(int64_t{10}));
  for (int i = 1; i < n; ++i) {
    std::unique_ptr<algebra::Operator> rhs = algebra::Select(
        algebra::Scan(StringPrintf("C%d", i)), "a", algebra::CmpOp::kGt,
        Value(int64_t{10}));
    plan = algebra::Join(std::move(plan), std::move(rhs),
                         algebra::JoinPredicate{"b", "b"});
  }
  return algebra::Submit("src", std::move(plan));
}

void BM_Estimate(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const bool propagate = state.range(1) != 0;
  Catalog catalog = BuildCatalog(depth);
  costmodel::RuleRegistry registry;
  DISCO_CHECK(costmodel::InstallGenericModel(&registry,
                                             costmodel::CalibrationParams())
                  .ok());
  costmodel::CostEstimator estimator(&registry, &catalog);
  std::unique_ptr<algebra::Operator> plan = DeepPlan(depth);

  costmodel::EstimateOptions options;
  options.propagate_required_vars = propagate;

  int64_t formulas = 0, runs = 0;
  for (auto _ : state) {
    Result<costmodel::PlanEstimate> est = estimator.Estimate(*plan, options);
    DISCO_CHECK(est.ok()) << est.status().ToString();
    formulas += est->formulas_evaluated;
    ++runs;
    benchmark::DoNotOptimize(est->root.total_time());
  }
  state.counters["depth"] = depth;
  state.counters["propagate_required"] = propagate ? 1 : 0;
  state.counters["formulas_per_estimate"] =
      runs > 0 ? static_cast<double>(formulas) / static_cast<double>(runs)
               : 0;
}
BENCHMARK(BM_Estimate)
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({12, 1})
    ->Args({12, 0})
    ->Args({24, 1})
    ->Args({24, 0});

/// Optimization (ii) at its strongest: a root rule that needs nothing
/// from its child cuts the whole subtree traversal.
void BM_EstimateConstantRootRule(benchmark::State& state) {
  const bool propagate = state.range(0) != 0;
  Catalog catalog = BuildCatalog(16);
  costmodel::RuleRegistry registry;
  DISCO_CHECK(costmodel::InstallGenericModel(&registry,
                                             costmodel::CalibrationParams())
                  .ok());
  // A wrapper rule answering every variable of the root join from
  // constants: with propagation the recursion is cut at the root.
  costlang::CompileSchema schema;
  Result<costlang::CompiledRuleSet> rules = costlang::CompileRuleText(
      "join(C1, C2, A1 = A2) {\n"
      "  CountObject = 100; ObjectSize = 64; TotalSize = 6400;\n"
      "  TimeFirst = 5; TimeNext = 1; TotalTime = 105;\n"
      "}",
      schema);
  DISCO_CHECK(rules.ok()) << rules.status().ToString();
  DISCO_CHECK(registry.AddWrapperRules("src", std::move(*rules)).ok());

  costmodel::CostEstimator estimator(&registry, &catalog);
  std::unique_ptr<algebra::Operator> plan = DeepPlan(16);
  costmodel::EstimateOptions options;
  options.propagate_required_vars = propagate;

  int64_t nodes = 0, runs = 0;
  for (auto _ : state) {
    Result<costmodel::PlanEstimate> est = estimator.Estimate(*plan, options);
    DISCO_CHECK(est.ok()) << est.status().ToString();
    nodes += est->nodes_visited;
    ++runs;
  }
  state.counters["propagate_required"] = propagate ? 1 : 0;
  state.counters["nodes_per_estimate"] =
      runs > 0 ? static_cast<double>(nodes) / static_cast<double>(runs) : 0;
}
BENCHMARK(BM_EstimateConstantRootRule)->Arg(1)->Arg(0);

}  // namespace
}  // namespace disco

BENCHMARK_MAIN();
