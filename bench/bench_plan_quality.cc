// Ext-1: does the blended cost model pick better plans?
//
// The paper's central claim is that wrapper-exported cost information
// leads the mediator to better execution plans than the generic
// (calibration-style) model alone. Two engineered-but-realistic
// scenarios:
//
//   Scenario A (statistics-driven): a skewed attribute where the generic
//   min/max/uniform selectivity estimate is off by ~400x; the wrapper
//   exports an equi-depth histogram. The misestimate flips a 3-way join
//   order / pushdown decision.
//
//   Scenario B (cost-rule-driven): a weak file-like source whose
//   predicate evaluation is very expensive (5 ms per record, e.g. regex
//   over text). The generic model assumes cheap filtering and pushes the
//   selection to the source; the wrapper's select rule reveals the true
//   cost and the optimizer ships the data and filters at the mediator.
//
// For each scenario we optimize under the generic-only registry and the
// blended registry, execute both chosen plans, and report the measured
// times.

#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

struct Choice {
  std::string plan;
  double estimated_ms = 0;
  double measured_ms = 0;
};

/// Optimizes + executes `sql` on `med`, whose registry may or may not
/// contain wrapper rules.
Choice RunOne(mediator::Mediator* med, const std::string& sql) {
  Result<mediator::QueryResult> r = med->Query(sql);
  DISCO_CHECK(r.ok()) << r.status().ToString();
  Choice c;
  c.plan = r->plan_text;
  c.estimated_ms = r->estimated_ms;
  c.measured_ms = r->measured_ms;
  return c;
}

void Report(const char* scenario, const std::string& sql,
            const Choice& generic, const Choice& blended) {
  std::printf("## %s\n", scenario);
  std::printf("query: %s\n", sql.c_str());
  std::printf("%-10s %14s %14s   plan\n", "model", "estimated_s",
              "measured_s");
  auto one_line = [](const std::string& plan) {
    std::string out;
    for (char ch : plan) out += (ch == '\n') ? ' ' : ch;
    return out;
  };
  std::printf("%-10s %14.2f %14.2f   %s\n", "generic",
              generic.estimated_ms / 1000.0, generic.measured_ms / 1000.0,
              one_line(generic.plan).c_str());
  std::printf("%-10s %14.2f %14.2f   %s\n", "blended",
              blended.estimated_ms / 1000.0, blended.measured_ms / 1000.0,
              one_line(blended.plan).c_str());
  std::printf("speedup of blended choice: %.2fx\n\n",
              blended.measured_ms > 0
                  ? generic.measured_ms / blended.measured_ms
                  : 0.0);
}

// ---- Scenario A ------------------------------------------------------

/// Cost rules a diligent erp wrapper implementor exports: accurate scan,
/// select and join formulas for this source's timing (12 ms page reads,
/// 1.5 ms per produced row, tiny comparisons, 128-page buffer -- so an
/// index-join probe faults nearly every time).
std::string ErpCostRules() {
  return
      "define IOms = 12;\n"
      "define OBJms = 1.5;\n"
      "define CMPms = 0.003;\n"
      "define START = 60;\n"
      "define PAGE = 4096;\n"
      "define HUGE = 1e18;\n"
      "scan(C) {\n"
      "  CountObject = C.CountObject;\n"
      "  TotalSize   = C.TotalSize;\n"
      "  ObjectSize  = C.ObjectSize;\n"
      "  TimeFirst   = START + IOms;\n"
      "  TimeNext    = OBJms;\n"
      "  TotalTime   = START + IOms * (C.TotalSize / PAGE)\n"
      "              + OBJms * C.CountObject;\n"
      "}\n"
      "select(C, P) {\n"
      "  CountObject = C.CountObject * selectivity();\n"
      "  ObjectSize  = C.ObjectSize;\n"
      "  TotalSize   = CountObject * ObjectSize;\n"
      "  TimeFirst   = C.TimeFirst;\n"
      "  TimeNext    = C.TimeNext;\n"
      "  TotalTime   = C.TotalTime + CMPms * C.CountObject;\n"
      "}\n"
      "# sort-merge join\n"
      "join(C1, C2, A1 = A2) {\n"
      "  CountObject = C1.CountObject * C2.CountObject\n"
      "              / max(min(C1.A1.CountDistinct, C2.A2.CountDistinct), 1);\n"
      "  ObjectSize  = C1.ObjectSize + C2.ObjectSize;\n"
      "  TotalSize   = CountObject * ObjectSize;\n"
      "  TimeFirst   = C1.TimeFirst + C2.TimeFirst;\n"
      "  TimeNext    = OBJms;\n"
      "  TotalTime   = C1.TotalTime + C2.TotalTime\n"
      "              + CMPms * (C1.CountObject + C2.CountObject)\n"
      "              + OBJms * CountObject;\n"
      "}\n"
      "# index join: with the tiny buffer, every probe is a page fault\n"
      "join(C1, C2, A1 = A2) {\n"
      "  TotalTime = if(C2.A2.Indexed,\n"
      "                 C1.TotalTime + IOms * C1.CountObject\n"
      "                 + OBJms * CountObject,\n"
      "                 HUGE);\n"
      "}\n";
}

std::unique_ptr<mediator::Mediator> BuildScenarioA(bool with_histogram) {
  mediator::MediatorOptions options;
  options.record_history = false;  // isolate the model comparison
  auto med = std::make_unique<mediator::Mediator>(options);

  // One relational source with a deliberately small buffer pool (128
  // pages), holding both sides of a join. Supplier.partId is heavily
  // skewed: 95% of suppliers reference parts 0..49, so `partId <= 49`
  // keeps ~95% of rows -- but min/max/uniform estimation predicts
  // 50/45000 = 0.1%. The cardinality error decides between an index
  // join (fine for a tiny outer; every probe faults a page) and
  // shipping + sort-merge (right for the real ~19000-row outer).
  storage::SourceCostParams params;
  params.ms_startup = 60.0;
  params.ms_per_page_read = 12.0;
  params.ms_per_object = 1.5;
  params.ms_per_cmp = 0.003;
  sources::EngineOptions engine;
  engine.allow_index = true;
  engine.sort_rids_before_fetch = false;
  auto erp = std::make_unique<sources::DataSource>("erp", /*pool_pages=*/128,
                                                   params, engine);

  // Suppliers: uniform join key, skewed city (95% 'paris' among 200
  // distinct cities -- a per-distinct-value uniform estimate predicts
  // 0.5%).
  storage::Table* suppliers = erp->CreateTable(CollectionSchema(
      "Supplier", {{"sid", AttrType::kLong},
                   {"partId", AttrType::kLong},
                   {"city", AttrType::kString}}));
  Rng rng(23);
  const int kNumParts = 71500;
  for (int i = 0; i < 20000; ++i) {
    std::string city =
        (rng.NextUint64(100) < 95)
            ? "paris"
            : StringPrintf("city%03d", static_cast<int>(rng.NextUint64(199)));
    DISCO_CHECK(suppliers
                    ->Insert({Value(int64_t{i}),
                              Value(rng.NextInt64(0, kNumParts - 1)),
                              Value(std::move(city))})
                    .ok());
  }
  DISCO_CHECK(suppliers->CreateIndex("sid").ok());

  storage::Table* parts = erp->CreateTable(CollectionSchema(
      "Part", {{"pid", AttrType::kLong}, {"weight", AttrType::kLong}}));
  for (int i = 0; i < kNumParts; ++i) {
    DISCO_CHECK(
        parts->Insert({Value(int64_t{i}), Value(rng.NextInt64(1, 100))})
            .ok());
  }
  DISCO_CHECK(parts->CreateIndex("pid").ok());

  wrapper::SimulatedWrapper::Options erp_opts;
  erp_opts.cost_rules = ErpCostRules();  // accurate timing in both configs
  if (with_histogram) erp_opts.histogram_buckets = 64;  // exports the skew
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(erp), erp_opts))
                  .ok());
  return med;
}

// ---- Scenario B ------------------------------------------------------

std::unique_ptr<mediator::Mediator> BuildScenarioB(bool blended) {
  mediator::MediatorOptions options;
  options.record_history = false;
  auto med = std::make_unique<mediator::Mediator>(options);

  // A text-file source where evaluating a predicate means running an
  // expensive pattern match per record.
  storage::SourceCostParams params;
  params.ms_startup = 20.0;
  params.ms_per_page_read = 10.0;
  params.ms_per_object = 0.5;
  params.ms_per_cmp = 5.0;  // the expensive part
  sources::EngineOptions engine;
  engine.allow_index = false;
  auto weblog = std::make_unique<sources::DataSource>(
      "weblog", /*pool_pages=*/256, params, engine);
  storage::Table* hits = weblog->CreateTable(CollectionSchema(
      "Hit", {{"docId", AttrType::kLong}, {"bytes", AttrType::kLong}}));
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    DISCO_CHECK(
        hits->Insert({Value(int64_t{i}), Value(rng.NextInt64(0, 5000))})
            .ok());
  }
  wrapper::SimulatedWrapper::Options wopts;
  wopts.capabilities = optimizer::SourceCapabilities::FilterOnly();
  if (blended) {
    // The wrapper's own rules: scanning the file is cheap (sequential
    // read + light parse), but evaluating a predicate costs 5 ms per
    // record on top of the scan.
    wopts.cost_rules =
        "scan(C) {\n"
        "  CountObject = C.CountObject;\n"
        "  TotalSize   = C.TotalSize;\n"
        "  ObjectSize  = C.ObjectSize;\n"
        "  TimeFirst   = 20;\n"
        "  TimeNext    = 0.5;\n"
        "  TotalTime   = 20 + 10 * (C.TotalSize / 4096)\n"
        "              + 0.5 * C.CountObject;\n"
        "}\n"
        "select(C, P) {\n"
        "  CountObject = C.CountObject * selectivity();\n"
        "  ObjectSize  = C.ObjectSize;\n"
        "  TotalSize   = CountObject * ObjectSize;\n"
        "  TimeFirst   = C.TimeFirst;\n"
        "  TimeNext    = C.TimeNext;\n"
        "  TotalTime   = C.TotalTime + 5 * C.CountObject;\n"
        "}\n";
  }
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(weblog), wopts))
                  .ok());
  return med;
}

int Run() {
  std::printf("# Ext-1: plan quality under generic vs blended cost models\n\n");

  {
    const std::string sql =
        "SELECT sid, weight FROM Supplier, Part "
        "WHERE Supplier.partId = Part.pid AND city = 'paris'";
    std::unique_ptr<mediator::Mediator> generic = BuildScenarioA(false);
    std::unique_ptr<mediator::Mediator> blended = BuildScenarioA(true);
    Choice g = RunOne(generic.get(), sql);
    Choice b = RunOne(blended.get(), sql);
    Report("Scenario A: skewed selectivity (histogram export)", sql, g, b);
  }

  {
    const std::string sql = "SELECT docId FROM Hit WHERE bytes >= 4900";
    std::unique_ptr<mediator::Mediator> generic = BuildScenarioB(false);
    std::unique_ptr<mediator::Mediator> blended = BuildScenarioB(true);
    Choice g = RunOne(generic.get(), sql);
    Choice b = RunOne(blended.get(), sql);
    Report("Scenario B: expensive source predicate (select cost rule)", sql,
           g, b);
  }
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
