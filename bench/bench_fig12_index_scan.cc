// Figure 12 reproduction: "Improvement of ObjectStore calibration".
//
// OO7 AtomicParts (70 000 objects x 56 B, 70 per 4096 B page at 96% fill
// = 1000 data pages), unclustered index on Id, uniform Id distribution.
// For each selectivity in [0, 0.7] we run the index scan
//     select(scan(AtomicPart), id <= cutoff)
// on the simulated ObjectStore source (cold buffer pool) and print three
// series:
//   Experiment   measured simulated response time
//   Calibration  the mediator's generic (calibrated, linear-page) model
//   Yao          the wrapper-exported Figure 13 rule (Yao's formula)
//
// Expected shape (the paper's claim): Calibration is linear in
// selectivity and underestimates the measured curve at low/medium
// selectivity; the Yao series tracks the measured curve closely.

#include <cstdio>
#include <vector>

#include "algebra/operator.h"
#include "bench007/oo7.h"
#include "catalog/catalog.h"
#include "common/logging.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/registry.h"
#include "wrapper/registration.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace {

int Run() {
  bench007::OO7Config config;  // paper-scale defaults
  Result<std::unique_ptr<sources::DataSource>> source =
      bench007::BuildOO7Source(config);
  DISCO_CHECK(source.ok()) << source.status().ToString();

  // Registration: catalog + two registries, one with only the generic
  // model (the calibration baseline) and one additionally holding the
  // wrapper's Yao rule (the paper's proposal).
  Catalog catalog;
  costmodel::RuleRegistry calibrated;
  costmodel::RuleRegistry blended;
  costmodel::CalibrationParams params;  // IO=25ms, Output=9ms etc.
  DISCO_CHECK(costmodel::InstallGenericModel(&calibrated, params).ok());
  DISCO_CHECK(costmodel::InstallGenericModel(&blended, params).ok());

  wrapper::SimulatedWrapper::Options opts;
  opts.cost_rules = bench007::Oo7YaoRuleText();
  wrapper::SimulatedWrapper w(std::move(*source), opts);
  optimizer::CapabilityTable caps;
  {
    // Register once for the catalog + blended registry...
    Result<wrapper::RegistrationReport> r =
        wrapper::RegisterWrapper(&w, &catalog, &blended, &caps);
    DISCO_CHECK(r.ok()) << r.status().ToString();
  }

  costmodel::CostEstimator calibrated_est(&calibrated, &catalog);
  costmodel::CostEstimator blended_est(&blended, &catalog);

  const int64_t n = config.num_atomic_parts;
  std::printf("# Figure 12: index scan response time vs selectivity\n");
  std::printf("# AtomicParts: %lld objects, %lld pages of %u bytes\n",
              static_cast<long long>(n),
              static_cast<long long>(
                  w.source()->table("AtomicPart")->heap().num_pages()),
              config.page_size);
  std::printf("%-12s %14s %14s %14s %12s\n", "selectivity", "experiment_s",
              "calibration_s", "yao_s", "pages_read");

  std::vector<double> sweep{0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30,
                            0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70};
  for (double sel : sweep) {
    const int64_t cutoff =
        static_cast<int64_t>(sel * static_cast<double>(n)) - 1;
    std::unique_ptr<algebra::Operator> plan = algebra::Select(
        algebra::Scan("AtomicPart"), "id", algebra::CmpOp::kLe,
        Value(cutoff));

    // Measured: cold caches per point, as a fresh query against the
    // store.
    w.source()->env()->pool.Clear();
    w.source()->env()->pool.ResetStats();
    Result<sources::ExecutionResult> measured = w.Execute(*plan);
    DISCO_CHECK(measured.ok()) << measured.status().ToString();

    Result<costmodel::PlanEstimate> calib =
        calibrated_est.EstimateAt(*plan, "oo7");
    DISCO_CHECK(calib.ok()) << calib.status().ToString();
    Result<costmodel::PlanEstimate> yao = blended_est.EstimateAt(*plan, "oo7");
    DISCO_CHECK(yao.ok()) << yao.status().ToString();

    std::printf("%-12.2f %14.1f %14.1f %14.1f %12lld\n", sel,
                measured->total_ms / 1000.0,
                calib->root.total_time() / 1000.0,
                yao->root.total_time() / 1000.0,
                static_cast<long long>(measured->pages_read));
  }
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
