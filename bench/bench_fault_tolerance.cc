// Robustness sweep: what does fault tolerance cost, and what does it
// buy? A two-source union federation runs under increasing per-submit
// failure probability, with retries (3 attempts, exponential backoff)
// and partial-answer mode enabled. Everything is seeded: rerunning the
// bench produces identical numbers.
//
// Columns:
//   p          injected per-submit failure probability
//   queries    runs at this fault level
//   full       runs answered completely (both branches)
//   partial    runs answered partially (one branch dropped + warning)
//   failed     runs that returned an error
//   retries    injected failures absorbed by retry/degradation
//   avg_ms     mean simulated time per answered run

#include <cstdio>
#include <memory>
#include <string>

#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

std::unique_ptr<wrapper::FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    wrapper::FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    Status s = t->Insert({Value(int64_t{i})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<wrapper::FaultInjectingWrapper>(std::move(inner),
                                                          profile);
}

int Run() {
  constexpr int kRuns = 40;
  constexpr int kRows = 200;
  std::printf("# fault-tolerance sweep: union over two sources, "
              "%d runs per level\n", kRuns);
  std::printf("%-6s %8s %6s %8s %7s %8s %10s\n", "p", "queries", "full",
              "partial", "failed", "retries", "avg_ms");

  std::string last_level_metrics;
  std::string summary_rows;
  for (double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    mediator::MediatorOptions options;
    options.fault_tolerance.allow_partial = true;
    options.fault_tolerance.retry = mediator::RetryPolicy::Standard(3);
    options.record_history = false;  // keep runs independent
    mediator::Mediator med(options);
    auto left = MakeSource("left", "L", kRows,
                           wrapper::FaultProfile::Flaky(p, /*seed=*/1));
    auto right = MakeSource("right", "R", kRows,
                            wrapper::FaultProfile::Flaky(p, /*seed=*/2));
    wrapper::FaultInjectingWrapper* lp = left.get();
    wrapper::FaultInjectingWrapper* rp = right.get();
    DISCO_CHECK(med.RegisterWrapper(std::move(left)).ok());
    DISCO_CHECK(med.RegisterWrapper(std::move(right)).ok());

    auto plan = algebra::Union(algebra::Submit("left", algebra::Scan("L")),
                               algebra::Submit("right", algebra::Scan("R")));
    int full = 0, partial = 0, failed = 0;
    double total_ms = 0;
    for (int run = 0; run < kRuns; ++run) {
      Result<mediator::QueryResult> r = med.Execute(*plan);
      if (!r.ok()) {
        ++failed;
        continue;
      }
      total_ms += r->measured_ms;
      if (r->tuples.size() == 2 * kRows) {
        ++full;  // possibly via retries, but nothing was dropped
      } else {
        ++partial;  // a branch was dropped, warning attached
      }
    }
    const int answered = full + partial;
    std::printf("%-6.2f %8d %6d %8d %7d %8lld %10.1f\n", p, kRuns, full,
                partial, failed,
                static_cast<long long>(lp->injected_failures() +
                                       rp->injected_failures()),
                answered > 0 ? total_ms / answered : 0.0);
    last_level_metrics = med.metrics()->ToText();
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s{\"p\": %.2f, \"queries\": %d, \"full\": %d, "
                  "\"partial\": %d, \"failed\": %d, \"retries\": %lld, "
                  "\"avg_ms\": %.1f}",
                  summary_rows.empty() ? "" : ",\n    ", p, kRuns, full,
                  partial, failed,
                  static_cast<long long>(lp->injected_failures() +
                                         rp->injected_failures()),
                  answered > 0 ? total_ms / answered : 0.0);
    summary_rows += row;
  }

  // Metrics snapshot of the harshest level: retries, dropped branches,
  // and breaker activity all leave counters behind (the name catalog is
  // in docs/OBSERVABILITY.md).
  std::printf("\n# metrics at p=0.50\n%s", last_level_metrics.c_str());

  // Machine-readable summary block (one JSON document between BEGIN/END
  // markers) so CI can extract a perf trajectory without parsing the
  // human table above. Fully seeded, so the block is byte-stable.
  std::printf("\n# BENCH_SUMMARY_BEGIN\n"
              "{\n"
              "  \"bench\": \"fault_tolerance\",\n"
              "  \"runs_per_level\": %d,\n"
              "  \"rows_per_source\": %d,\n"
              "  \"levels\": [\n    %s\n  ]\n"
              "}\n"
              "# BENCH_SUMMARY_END\n",
              kRuns, kRows, summary_rows.c_str());
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
