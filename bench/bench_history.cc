// Ext-5: historical costs (Section 4.3.1).
//
// A workload repeatedly queries the same source with (a) identical
// subqueries and (b) subqueries that "vary only by the constant used [in
// the] predicate". We track the relative error of the mediator's
// TotalTime estimate for the submitted subquery over time, under three
// regimes:
//   none        no history (pure model estimates)
//   blended     query-scope exact matches + parameter adjustment
// Exact repeats snap to zero error via the query scope; the adjustment
// factor also shrinks the error of *similar* (not identical) subqueries,
// which pure query-caching (HERMES-style) cannot.

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench007/oo7.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

std::unique_ptr<mediator::Mediator> BuildMediator(bool record_history) {
  mediator::MediatorOptions options;
  options.record_history = record_history;
  auto med = std::make_unique<mediator::Mediator>(options);

  bench007::OO7Config config;
  config.num_atomic_parts = 20000;
  config.connections_per_atomic = 1;
  Result<std::unique_ptr<sources::DataSource>> source =
      bench007::BuildOO7Source(config);
  DISCO_CHECK(source.ok()) << source.status().ToString();
  // The wrapper exports statistics but NO cost rules: the generic model
  // misestimates the unclustered index scan, which is what history can
  // repair.
  wrapper::SimulatedWrapper::Options wopts;
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(*source), wopts))
                  .ok());
  return med;
}

int Run() {
  std::printf("# Ext-5: estimate error over a repeated workload\n");
  std::printf("%-7s %-22s %14s %14s %12s\n", "round", "query", "est_s",
              "measured_s", "rel_error");

  for (bool history : {false, true}) {
    std::printf("# history %s\n", history ? "on (query scope + adjustment)"
                                          : "off");
    std::unique_ptr<mediator::Mediator> med = BuildMediator(history);
    // Rounds alternate an exact repeat (id <= 4999) and a perturbed
    // variant (varying cutoff).
    for (int round = 0; round < 6; ++round) {
      const bool exact = (round % 2) == 0;
      const int64_t cutoff = exact ? 4999 : 3999 + round * 500;
      std::string sql =
          StringPrintf("SELECT id FROM AtomicPart WHERE id <= %lld",
                       static_cast<long long>(cutoff));
      Result<mediator::QueryResult> r = med->Query(sql);
      DISCO_CHECK(r.ok()) << r.status().ToString();
      double rel_err =
          r->measured_ms > 0
              ? std::abs(r->estimated_ms - r->measured_ms) / r->measured_ms
              : 0;
      std::printf("%-7d %-22s %14.2f %14.2f %12.3f\n", round,
                  exact ? "repeat(id<=4999)"
                        : StringPrintf("vary(id<=%lld)",
                                       static_cast<long long>(cutoff))
                              .c_str(),
                  r->estimated_ms / 1000.0, r->measured_ms / 1000.0, rel_err);
    }
  }
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
