// Ext-7: clustering -- the case the paper singles out as "not easily
// captured by a calibrating model" (Section 7).
//
// The same index-range scan behaves completely differently on a
// clustered vs an unclustered AtomicParts collection: clustered, the
// pages fetched really ARE proportional to selectivity (the calibrated
// linear formula is right); unclustered, Yao's formula applies. No
// single mediator-side model fits both layouts -- but each wrapper can
// export the rule matching its own layout.

#include <cstdio>
#include <memory>

#include "algebra/operator.h"
#include "bench007/oo7.h"
#include "catalog/catalog.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/registry.h"
#include "wrapper/registration.h"
#include "wrapper/wrapper.h"

namespace disco {
namespace {

/// Wrapper rule for the clustered layout: pages fetched are proportional
/// to selectivity (the linear model, correct here).
std::string ClusteredRuleText() {
  return
      "define IO = 25;\n"
      "define Output = 9;\n"
      "define PageSize = 4096;\n"
      "select(C, id <= V) {\n"
      "  CountPage   = C.TotalSize / PageSize;\n"
      "  CountObject = C.CountObject * (V - C.id.Min)\n"
      "              / (C.id.Max - C.id.Min);\n"
      "  ObjectSize  = C.ObjectSize;\n"
      "  TotalSize   = CountObject * ObjectSize;\n"
      "  TotalTime   = IO * CountPage * (CountObject / C.CountObject)\n"
      "              + CountObject * Output;\n"
      "}\n";
}

int Run() {
  std::printf("# Ext-7: clustered vs unclustered index scans\n");
  std::printf("%-12s %-12s %14s %14s %12s\n", "layout", "selectivity",
              "experiment_s", "wrapper_est_s", "pages_read");

  for (bool clustered : {false, true}) {
    bench007::OO7Config config;
    config.num_atomic_parts = 70000;
    config.clustered_ids = clustered;
    Result<std::unique_ptr<sources::DataSource>> source =
        bench007::BuildOO7Source(config);
    DISCO_CHECK(source.ok()) << source.status().ToString();

    Catalog catalog;
    costmodel::RuleRegistry registry;
    DISCO_CHECK(costmodel::InstallGenericModel(
                    &registry, costmodel::CalibrationParams())
                    .ok());
    wrapper::SimulatedWrapper::Options opts;
    opts.cost_rules =
        clustered ? ClusteredRuleText() : bench007::Oo7YaoRuleText();
    wrapper::SimulatedWrapper w(std::move(*source), opts);
    optimizer::CapabilityTable caps;
    Result<wrapper::RegistrationReport> reg =
        wrapper::RegisterWrapper(&w, &catalog, &registry, &caps);
    DISCO_CHECK(reg.ok()) << reg.status().ToString();

    costmodel::CostEstimator estimator(&registry, &catalog);
    for (double sel : {0.05, 0.20, 0.50}) {
      const int64_t cutoff = static_cast<int64_t>(
          sel * static_cast<double>(config.num_atomic_parts)) - 1;
      std::unique_ptr<algebra::Operator> plan = algebra::Select(
          algebra::Scan("AtomicPart"), "id", algebra::CmpOp::kLe,
          Value(cutoff));

      w.source()->env()->pool.Clear();
      w.source()->env()->pool.ResetStats();
      Result<sources::ExecutionResult> measured = w.Execute(*plan);
      DISCO_CHECK(measured.ok()) << measured.status().ToString();
      Result<costmodel::PlanEstimate> est = estimator.EstimateAt(*plan, "oo7");
      DISCO_CHECK(est.ok()) << est.status().ToString();

      std::printf("%-12s %-12.2f %14.1f %14.1f %12lld\n",
                  clustered ? "clustered" : "unclustered", sel,
                  measured->total_ms / 1000.0,
                  est->root.total_time() / 1000.0,
                  static_cast<long long>(measured->pages_read));
    }
  }
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
