// Batched + parallel bind-join probes (docs/PERFORMANCE.md): what do
// IN-set probe batches and simulated-concurrent waves buy over the
// original one-equality-probe-per-key loop? Three benches over a seeded
// image-library federation:
//
//   probes     200-key bind join, serial loop vs batched waves -- the
//              answers must match byte-for-byte while the charged
//              latency drops max-not-sum per wave
//   pools      the batched configuration at federation pool sizes
//              0/1/4 -- tuples, warnings, clock, and trace must be
//              byte-identical
//   objective  kTotalTime vs kResponseTime over a 3-relation chain:
//              the enumerator keeps the bind join where serial cost is
//              what counts and overlaps submits where it is not
//
// Everything runs on the simulated clock with seeded RNGs, so every
// number (and BENCH_bindjoin.json) is byte-stable across reruns.

#include <cstdio>
#include <memory>
#include <string>

#include "mediator/mediator.h"
#include "optimizer/optimizer.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

constexpr int kImages = 20000;
constexpr int kMeta = 2000;
constexpr int kRuns = 10;

std::unique_ptr<wrapper::Wrapper> MakeImageSource(int rows,
                                                  double latency_ms) {
  auto src = sources::MakeObjectDbSource("img");
  storage::Table* images = src->CreateTable(CollectionSchema(
      "Image", {{"id", AttrType::kLong}, {"feature", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    Status s =
        images->Insert({Value(int64_t{i}), Value(int64_t{(i * 31) % 1000})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  DISCO_CHECK(images->CreateIndex("id").ok());
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  wrapper::FaultProfile profile;
  profile.added_latency_ms = latency_ms;
  return std::make_unique<wrapper::FaultInjectingWrapper>(std::move(inner),
                                                          profile);
}

std::unique_ptr<wrapper::Wrapper> MakeMetaSource(int rows) {
  auto src = sources::MakeRelationalSource("meta");
  storage::Table* docs = src->CreateTable(CollectionSchema(
      "Meta", {{"photoId", AttrType::kLong}, {"year", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    Status s = docs->Insert(
        {Value(int64_t{i * 10}), Value(int64_t{1990 + i % 10})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  return std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
}

/// The probe workload: 200 metadata rows of year 1999 (200 distinct
/// keys) bind-joined into the indexed Image collection, every probe
/// paying 100 ms of injected source latency.
std::unique_ptr<algebra::Operator> ProbePlan() {
  using algebra::CmpOp;
  using algebra::Scan;
  using algebra::Select;
  using algebra::Submit;
  return algebra::BindJoin(
      Submit("meta",
             Select(Scan("Meta"), "year", CmpOp::kEq, Value(int64_t{1999}))),
      "img", "Image", algebra::JoinPredicate{"photoId", "id"});
}

std::unique_ptr<mediator::Mediator> MakeFederation(
    const mediator::FederationOptions& fed) {
  mediator::MediatorOptions options;
  options.record_history = false;
  options.fault_tolerance.federation = fed;
  auto med = std::make_unique<mediator::Mediator>(options);
  DISCO_CHECK(med->RegisterWrapper(MakeImageSource(kImages, 100)).ok());
  DISCO_CHECK(med->RegisterWrapper(MakeMetaSource(kMeta)).ok());
  return med;
}

/// One run rendered to bytes: tuples, warnings, clock, trace.
struct RunSnapshot {
  std::string tuples;
  std::string warnings;
  double measured_ms = 0;
  std::string trace_json;
};

RunSnapshot Snapshot(mediator::Mediator* med) {
  auto plan = ProbePlan();
  auto r = med->Execute(*plan);
  DISCO_CHECK(r.ok()) << r.status().ToString();
  RunSnapshot snap;
  for (const storage::Tuple& t : r->tuples) {
    for (const Value& v : t) snap.tuples += v.ToString() + ",";
  }
  for (const mediator::ExecWarning& w : r->warnings) {
    snap.warnings += w.ToString() + "\n";
  }
  snap.measured_ms = r->measured_ms;
  if (r->trace != nullptr) snap.trace_json = r->trace->ToChromeJson();
  return snap;
}

struct ProbeNumbers {
  double serial_ms = 0;   ///< mean simulated ms/query, per-key loop
  double batched_ms = 0;  ///< mean simulated ms/query, batched waves
  double speedup = 0;
  long long probes_serial = 0;
  long long probes_batched = 0;
  long long waves = 0;
};

ProbeNumbers RunProbes() {
  ProbeNumbers out;
  std::string baseline_tuples, baseline_warnings;
  for (int batched : {0, 1}) {
    mediator::FederationOptions fed;
    if (batched) {
      fed.bind_batch_size = 16;
      fed.bind_parallelism = 8;
    }
    auto med = MakeFederation(fed);
    double total = 0;
    RunSnapshot snap;
    for (int run = 0; run < kRuns; ++run) {
      snap = Snapshot(med.get());
      total += snap.measured_ms;
    }
    const long long probes =
        med->metrics()->counter("disco.exec.bindjoin.probes")->value() /
        kRuns;
    if (batched) {
      DISCO_CHECK(snap.tuples == baseline_tuples)
          << "batched probes changed the answer";
      DISCO_CHECK(snap.warnings == baseline_warnings)
          << "batched probes changed the degradations";
      out.batched_ms = total / kRuns;
      out.probes_batched = probes;
      out.waves =
          med->metrics()->counter("disco.exec.bindjoin.waves")->value() /
          kRuns;
    } else {
      baseline_tuples = snap.tuples;
      baseline_warnings = snap.warnings;
      out.serial_ms = total / kRuns;
      out.probes_serial = probes;
    }
  }
  out.speedup = out.batched_ms > 0 ? out.serial_ms / out.batched_ms : 0;
  std::printf("%-10s %14.1f %14.1f %9.2fx   (%lld -> %lld probes, "
              "%lld waves)\n",
              "probes", out.serial_ms, out.batched_ms, out.speedup,
              out.probes_serial, out.probes_batched, out.waves);
  DISCO_CHECK(out.speedup >= 2.0)
      << "batched bind join below the 2x bar: " << out.speedup;
  return out;
}

struct PoolNumbers {
  int pools_checked = 0;
  double identical = 0;  ///< 1.0 = byte-identical across every pool size
};

PoolNumbers RunPools() {
  PoolNumbers out;
  RunSnapshot base;
  for (int threads : {0, 1, 4}) {
    mediator::FederationOptions fed;
    fed.threads = threads;
    fed.deadline_ms = 1e9;  // never expires; keeps the scatter path on
    fed.bind_batch_size = 16;
    fed.bind_parallelism = 8;
    auto med = MakeFederation(fed);
    RunSnapshot snap = Snapshot(med.get());
    DISCO_CHECK(!snap.trace_json.empty());
    if (threads == 0) {
      base = std::move(snap);
    } else {
      DISCO_CHECK(snap.tuples == base.tuples);
      DISCO_CHECK(snap.warnings == base.warnings);
      DISCO_CHECK(snap.measured_ms == base.measured_ms);
      DISCO_CHECK(snap.trace_json == base.trace_json);
    }
    ++out.pools_checked;
  }
  out.identical = 1.0;
  std::printf("%-10s %14s %14s %9s   (%d pool sizes byte-identical)\n",
              "pools", "-", "-", "", out.pools_checked);
  return out;
}

struct ObjectiveNumbers {
  double total_ms = 0;     ///< winner's price under kTotalTime
  double response_ms = 0;  ///< winner's price under kResponseTime
  double diverged = 0;     ///< 1.0 = the two objectives picked
                           ///< different plans
  long long plans_pruned = 0;
  std::string total_plan;
  std::string response_plan;
};

ObjectiveNumbers RunObjective() {
  // The 3-relation chain Tag - Meta - Image, sized so the batched bind
  // join into Image wins on serial cost while overlapped submits win on
  // response time (same shape as BindJoinBatchTest).
  mediator::MediatorOptions options;
  options.record_history = false;
  options.fault_tolerance.federation.bind_batch_size = 4;
  options.fault_tolerance.federation.bind_parallelism = 2;
  mediator::Mediator med(options);
  DISCO_CHECK(med.RegisterWrapper(MakeImageSource(220, 0)).ok());
  DISCO_CHECK(med.RegisterWrapper(MakeMetaSource(400)).ok());
  auto tag = sources::MakeRelationalSource("tag");
  storage::Table* tags = tag->CreateTable(CollectionSchema(
      "Tag", {{"photoId", AttrType::kLong}, {"label", AttrType::kLong}}));
  for (int i = 0; i < 40; ++i) {
    DISCO_CHECK(
        tags->Insert({Value(int64_t{i * 10}), Value(int64_t{i % 5})}).ok());
  }
  DISCO_CHECK(med.RegisterWrapper(
                     std::make_unique<wrapper::SimulatedWrapper>(
                         std::move(tag),
                         wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto bound = med.Analyze(
      "SELECT label, feature FROM Tag, Meta, Image "
      "WHERE Tag.photoId = Meta.photoId AND Meta.photoId = Image.id "
      "AND year = 1999");
  DISCO_CHECK(bound.ok()) << bound.status().ToString();
  costmodel::CostEstimator est(med.registry(), &med.catalog());
  optimizer::Optimizer opt(&est, &med.capabilities());

  optimizer::OptimizerOptions total, response;
  total.objective = optimizer::Objective::kTotalTime;
  response.objective = optimizer::Objective::kResponseTime;
  auto p_total = opt.Optimize(*bound, total);
  auto p_response = opt.Optimize(*bound, response);
  DISCO_CHECK(p_total.ok()) << p_total.status().ToString();
  DISCO_CHECK(p_response.ok()) << p_response.status().ToString();

  ObjectiveNumbers out;
  out.total_ms = p_total->estimated_ms;
  out.response_ms = p_response->estimated_ms;
  out.total_plan = p_total->plan->ToString();
  out.response_plan = p_response->plan->ToString();
  out.diverged = out.total_plan != out.response_plan ? 1.0 : 0.0;
  out.plans_pruned = p_response->stats.plans_pruned;
  std::printf("%-10s %14.1f %14.1f %9s   (%lld plans pruned)\n", "objective",
              out.total_ms, out.response_ms,
              out.diverged == 1.0 ? "diverged" : "same", out.plans_pruned);
  std::printf("#   total:    %s\n#   response: %s\n", out.total_plan.c_str(),
              out.response_plan.c_str());
  DISCO_CHECK(out.diverged == 1.0)
      << "objectives agreed; the costing is not response-time-aware";
  DISCO_CHECK(out.total_plan.find("bindjoin") != std::string::npos)
      << out.total_plan;
  DISCO_CHECK(out.plans_pruned > 0) << "pruning was inactive";
  return out;
}

void WriteJson(const ProbeNumbers& probes, const PoolNumbers& pools,
               const ObjectiveNumbers& objective) {
  std::FILE* f = std::fopen("BENCH_bindjoin.json", "w");
  DISCO_CHECK(f != nullptr) << "cannot write BENCH_bindjoin.json";
  std::fprintf(f,
               "{\"bindjoin\":{\"serial_ms\":%.3f,\"batched_ms\":%.3f,"
               "\"speedup\":%.3f,\"probes_serial\":%lld,"
               "\"probes_batched\":%lld,\"waves\":%lld},",
               probes.serial_ms, probes.batched_ms, probes.speedup,
               probes.probes_serial, probes.probes_batched, probes.waves);
  std::fprintf(f,
               "\"pools\":{\"pools_checked\":%d,\"identical\":%.1f},",
               pools.pools_checked, pools.identical);
  std::fprintf(f,
               "\"objective\":{\"total_ms\":%.3f,\"response_ms\":%.3f,"
               "\"diverged\":%.1f,\"plans_pruned\":%lld}}\n",
               objective.total_ms, objective.response_ms, objective.diverged,
               objective.plans_pruned);
  std::fclose(f);
}

int Run() {
  std::printf("# batched bind-join probes: %d images, %d meta rows, "
              "%d runs/arm (simulated ms)\n",
              kImages, kMeta, kRuns);
  std::printf("%-10s %14s %14s %9s\n", "section", "baseline_ms",
              "batched_ms", "delta");
  ProbeNumbers probes = RunProbes();
  PoolNumbers pools = RunPools();
  ObjectiveNumbers objective = RunObjective();
  WriteJson(probes, pools, objective);
  std::printf("# wrote BENCH_bindjoin.json\n");

  // Machine-readable block for CI trending; fully seeded and simulated,
  // so byte-stable across reruns.
  std::printf("\n# BENCH_SUMMARY_BEGIN\n"
              "{\n"
              "  \"bench\": \"bindjoin\",\n"
              "  \"probe_speedup\": %.3f,\n"
              "  \"pool_identical\": %.1f,\n"
              "  \"objective_diverged\": %.1f\n"
              "}\n"
              "# BENCH_SUMMARY_END\n",
              probes.speedup, pools.identical, objective.diverged);
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
