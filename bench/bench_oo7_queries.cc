// Ext-9: estimate accuracy across the OO7 query classes.
//
// The paper's calibration baseline [GST96] was validated by running the
// OO7 benchmark and comparing real execution times with calibrated
// estimates. We run an OO7-style query suite through the mediator twice:
// once with a statistics-only wrapper (the calibration setting) and once
// with the wrapper additionally exporting its cost rules (the paper's
// proposal), and report the estimate error per query class.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench007/oo7.h"
#include "common/logging.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

struct QueryCase {
  const char* name;
  std::string sql;
};

std::unique_ptr<mediator::Mediator> BuildMediator(bool blended) {
  mediator::MediatorOptions options;
  options.record_history = false;  // measure pure model accuracy
  auto med = std::make_unique<mediator::Mediator>(options);
  bench007::OO7Config config;
  config.num_atomic_parts = 35000;
  config.connections_per_atomic = 2;
  config.num_composite_parts = 500;
  config.num_documents = 500;
  Result<std::unique_ptr<sources::DataSource>> source =
      bench007::BuildOO7Source(config);
  DISCO_CHECK(source.ok()) << source.status().ToString();
  wrapper::SimulatedWrapper::Options wopts;
  if (blended) {
    wopts.cost_rules = bench007::Oo7YaoRuleText();
    wopts.histogram_buckets = 32;
  }
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(*source), wopts))
                  .ok());
  return med;
}

int Run() {
  std::vector<QueryCase> queries{
      {"Q1 exact match",
       "SELECT id, x, y FROM AtomicPart WHERE id = 17321"},
      {"Q2 1% range",
       "SELECT id FROM AtomicPart WHERE buildDate <= 9"},
      {"Q3 10% range",
       "SELECT id FROM AtomicPart WHERE buildDate <= 99"},
      {"Q4 doc join",
       "SELECT title FROM Document, CompositePart "
       "WHERE Document.id = CompositePart.documentId "
       "AND CompositePart.id <= 49"},
      {"Q5 conn join",
       "SELECT length FROM AtomicPart, Connection "
       "WHERE AtomicPart.id = Connection.fromId AND id <= 99"},
      {"Q7 full scan", "SELECT id FROM AtomicPart"},
      {"Q8 group-by",
       "SELECT type, count(*) FROM AtomicPart GROUP BY type"},
      {"idx 20% range",
       "SELECT id FROM AtomicPart WHERE id <= 6999"},
  };

  std::printf("# Ext-9: OO7 query suite, estimate vs measured\n");
  std::printf("%-15s %-10s %12s %12s %10s\n", "query", "model",
              "estimated_s", "measured_s", "rel_error");

  for (bool blended : {false, true}) {
    std::unique_ptr<mediator::Mediator> med = BuildMediator(blended);
    double sum_err = 0;
    for (const QueryCase& q : queries) {
      // Cold caches per query, as an isolated measurement.
      wrapper::SimulatedWrapper* w =
          static_cast<wrapper::SimulatedWrapper*>(med->wrapper("oo7"));
      w->source()->env()->pool.Clear();

      Result<mediator::QueryResult> r = med->Query(q.sql);
      DISCO_CHECK(r.ok()) << q.sql << ": " << r.status().ToString();
      double err = r->measured_ms > 0
                       ? std::abs(r->estimated_ms - r->measured_ms) /
                             r->measured_ms
                       : 0;
      sum_err += err;
      std::printf("%-15s %-10s %12.2f %12.2f %10.3f\n", q.name,
                  blended ? "blended" : "generic", r->estimated_ms / 1000.0,
                  r->measured_ms / 1000.0, err);
    }
    std::printf("%-15s %-10s %37s mean %.3f\n\n", "", "", "",
                sum_err / static_cast<double>(queries.size()));
  }
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
