// Ext-2: rule-matching overhead vs registry size.
//
// Section 3.3.2 worries that "the proliferation of query-specific cost
// rules ... tends to slow down the cost estimate process" and motivates
// the indexed ("virtual table") matcher. This bench estimates a fixed
// plan while the registry holds growing numbers of wrapper rules at
// predicate scope, measuring estimation time and match attempts.

#include <benchmark/benchmark.h>

#include <memory>

#include "algebra/operator.h"
#include "catalog/catalog.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "costlang/compiler.h"
#include "costmodel/estimator.h"
#include "costmodel/generic_model.h"
#include "costmodel/registry.h"

namespace disco {
namespace {

/// Populates a registry with the generic model plus `num_rules`
/// predicate-scope rules for collection "Employee" (each binding a
/// distinct constant, so none match the benchmark plan's constant).
std::unique_ptr<costmodel::RuleRegistry> BuildRegistry(int num_rules) {
  auto registry = std::make_unique<costmodel::RuleRegistry>();
  costmodel::CalibrationParams params;
  DISCO_CHECK(costmodel::InstallGenericModel(registry.get(), params).ok());

  costlang::CompileSchema schema;
  schema.AddCollection("Employee", {"salary", "name"});
  std::string text;
  for (int i = 0; i < num_rules; ++i) {
    text += StringPrintf(
        "select(Employee, salary = %d) { TotalTime = %d; }\n", 1000000 + i,
        i + 1);
  }
  if (!text.empty()) {
    Result<costlang::CompiledRuleSet> rules =
        costlang::CompileRuleText(text, schema);
    DISCO_CHECK(rules.ok()) << rules.status().ToString();
    DISCO_CHECK(registry->AddWrapperRules("src", std::move(*rules)).ok());
  }
  return registry;
}

Catalog BuildCatalog() {
  Catalog catalog;
  DISCO_CHECK(catalog.RegisterSource("src").ok());
  CollectionSchema schema("Employee", {{"salary", AttrType::kLong},
                                       {"name", AttrType::kString}});
  CollectionStats stats;
  stats.extent = ExtentStats{100000, 12000000, 120};
  AttributeStats salary;
  salary.indexed = true;
  salary.count_distinct = 5000;
  salary.min = Value(int64_t{0});
  salary.max = Value(int64_t{200000});
  stats.attributes["salary"] = salary;
  DISCO_CHECK(catalog.RegisterCollection("src", schema, stats).ok());
  return catalog;
}

void BM_EstimateWithRules(benchmark::State& state) {
  const int num_rules = static_cast<int>(state.range(0));
  std::unique_ptr<costmodel::RuleRegistry> registry =
      BuildRegistry(num_rules);
  Catalog catalog = BuildCatalog();
  costmodel::CostEstimator estimator(registry.get(), &catalog);

  std::unique_ptr<algebra::Operator> plan = algebra::Submit(
      "src", algebra::Select(algebra::Scan("Employee"), "salary",
                             algebra::CmpOp::kEq, Value(int64_t{77})));

  int64_t match_attempts = 0;
  int64_t estimates = 0;
  for (auto _ : state) {
    Result<costmodel::PlanEstimate> est = estimator.Estimate(*plan);
    DISCO_CHECK(est.ok()) << est.status().ToString();
    match_attempts += est->match_attempts;
    ++estimates;
    benchmark::DoNotOptimize(est->root.total_time());
  }
  state.counters["rules"] = num_rules;
  state.counters["match_attempts_per_estimate"] =
      estimates > 0 ? static_cast<double>(match_attempts) /
                          static_cast<double>(estimates)
                    : 0;
}
BENCHMARK(BM_EstimateWithRules)->Arg(0)->Arg(16)->Arg(256)->Arg(4096);

/// A matching predicate-scope rule among many non-matching ones: the
/// winning level must still be found quickly.
void BM_EstimateMatchingRule(benchmark::State& state) {
  const int num_rules = static_cast<int>(state.range(0));
  std::unique_ptr<costmodel::RuleRegistry> registry =
      BuildRegistry(num_rules);
  // The rule that actually matches salary = 77.
  costlang::CompileSchema schema;
  schema.AddCollection("Employee", {"salary", "name"});
  Result<costlang::CompiledRuleSet> rules = costlang::CompileRuleText(
      "select(Employee, salary = 77) { TotalTime = 5; }", schema);
  DISCO_CHECK(rules.ok());
  DISCO_CHECK(registry->AddWrapperRules("src", std::move(*rules)).ok());

  Catalog catalog = BuildCatalog();
  costmodel::CostEstimator estimator(registry.get(), &catalog);
  std::unique_ptr<algebra::Operator> plan = algebra::Submit(
      "src", algebra::Select(algebra::Scan("Employee"), "salary",
                             algebra::CmpOp::kEq, Value(int64_t{77})));
  for (auto _ : state) {
    Result<costmodel::PlanEstimate> est = estimator.Estimate(*plan);
    DISCO_CHECK(est.ok());
    benchmark::DoNotOptimize(est->root.total_time());
  }
  state.counters["rules"] = num_rules;
}
BENCHMARK(BM_EstimateMatchingRule)->Arg(16)->Arg(4096);

}  // namespace
}  // namespace disco

BENCHMARK_MAIN();
