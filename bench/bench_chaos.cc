// Chaos sweep under degradation contracts (docs/ROBUSTNESS.md): every
// fault scenario x 25 seeds, each run racing a fault-free oracle over
// five arms (pools 0/1/4, a byte-identity replay, and the oracle).
// The contracts are hard assertions here -- a run that returns a tuple
// the oracle didn't, loses one silently, breaks a breaker invariant,
// calls an open-breaker source, or fails to replay byte-identically
// aborts the bench. Scores land in BENCH_chaos.json for the CI gate
// (soundness must be exactly 1.0).
//
// Everything runs on the simulated clock with seeded RNGs, so the
// sweep -- all 200 runs -- is byte-stable across reruns.

#include <cstdio>

#include "chaos/chaos_harness.h"
#include "common/logging.h"

namespace disco {
namespace {

int Run() {
  chaos::ChaosOptions options;
  options.seeds = 25;  // x8 scenarios = 200 seed-scenario runs
  std::printf("# chaos sweep: %d seeds x %zu scenarios, %d queries/run, "
              "%d rows/source\n",
              options.seeds, chaos::AllChaosScenarios().size(),
              options.queries_per_run, options.rows_per_source);

  chaos::ChaosSweepResult sweep = chaos::RunChaosSweep(options);

  std::printf("%-20s %6s %6s %10s %10s\n", "scenario", "runs", "passed",
              "avail", "quarantined");
  {
    // Per-scenario roll-up for the human-readable table.
    std::string current;
    int runs = 0, passed = 0;
    double avail = 0;
    long long quarantined = 0;
    auto flush = [&]() {
      if (runs == 0) return;
      std::printf("%-20s %6d %6d %10.3f %10lld\n", current.c_str(), runs,
                  passed, avail / runs, quarantined);
    };
    for (const chaos::ChaosRunResult& r : sweep.results) {
      if (r.scenario != current) {
        flush();
        current = r.scenario;
        runs = passed = 0;
        avail = 0;
        quarantined = 0;
      }
      ++runs;
      if (r.passed()) ++passed;
      avail += r.availability;
      quarantined += r.quarantined_rows;
    }
    flush();
  }

  for (const chaos::ChaosRunResult& r : sweep.results) {
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "%s seed=%llu: %s\n", r.scenario.c_str(),
                   static_cast<unsigned long long>(r.seed), v.c_str());
    }
    DISCO_CHECK(r.sound) << r.scenario << " seed " << r.seed
                         << ": unsound tuples returned";
    DISCO_CHECK(r.attributed) << r.scenario << " seed " << r.seed
                              << ": silent tuple loss";
    DISCO_CHECK(r.breaker_ok) << r.scenario << " seed " << r.seed
                              << ": breaker invariant violated";
    DISCO_CHECK(r.no_open_calls) << r.scenario << " seed " << r.seed
                                 << ": call reached an open breaker";
    DISCO_CHECK(r.pools_identical) << r.scenario << " seed " << r.seed
                                   << ": pool arms diverged";
    DISCO_CHECK(r.replay_identical) << r.scenario << " seed " << r.seed
                                    << ": replay diverged";
  }
  DISCO_CHECK(sweep.soundness == 1.0);
  DISCO_CHECK(sweep.runs >= 200) << "sweep shrank below the 200-run bar";

  std::FILE* f = std::fopen("BENCH_chaos.json", "w");
  DISCO_CHECK(f != nullptr) << "cannot write BENCH_chaos.json";
  std::fprintf(f, "%s\n", sweep.ToJson().c_str());
  std::fclose(f);
  std::printf("# wrote BENCH_chaos.json\n");

  // Machine-readable block for CI trending; fully seeded and simulated,
  // so byte-stable across reruns.
  std::printf("\n# BENCH_SUMMARY_BEGIN\n"
              "{\n"
              "  \"bench\": \"chaos\",\n"
              "  \"runs\": %d,\n"
              "  \"passed\": %d,\n"
              "  \"soundness\": %.4f,\n"
              "  \"availability\": %.4f,\n"
              "  \"quarantined_rows\": %lld\n"
              "}\n"
              "# BENCH_SUMMARY_END\n",
              sweep.runs, sweep.passed, sweep.soundness, sweep.availability,
              static_cast<long long>(sweep.quarantined_rows));
  return sweep.all_passed() ? 0 : 1;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
