// Profiling-overhead bench: how much wall time does the execution
// profiler add to the query path? The simulated clock is unaffected by
// construction (profiling never calls Charge), so the interesting
// number is the host-side overhead of collecting NodeMeasures and
// building/aggregating PlanProfiles.
//
// A two-source union federation runs the same query kRuns times with
// profiling off and on; both passes are seeded and produce identical
// simulated timings. Results land in BENCH_profiler.json (cwd).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<wrapper::FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    Status s = t->Insert({Value(int64_t{i})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<wrapper::FaultInjectingWrapper>(
      std::move(inner), wrapper::FaultProfile{});
}

struct PassResult {
  double wall_ms_per_query = 0;
  double simulated_ms = 0;  ///< one query's simulated time (byte-stable)
};

PassResult RunPass(bool profile, int runs) {
  mediator::MediatorOptions options;
  options.profile_execution = profile;
  options.record_history = false;
  options.collect_traces = false;
  mediator::Mediator med(options);
  DISCO_CHECK(med.RegisterWrapper(MakeSource("left", "L", 500)).ok());
  DISCO_CHECK(med.RegisterWrapper(MakeSource("right", "R", 500)).ok());
  auto plan = algebra::Union(algebra::Submit("left", algebra::Scan("L")),
                             algebra::Submit("right", algebra::Scan("R")));

  PassResult out;
  const double t0 = NowMs();
  for (int i = 0; i < runs; ++i) {
    Result<mediator::QueryResult> r = med.Execute(*plan);
    DISCO_CHECK(r.ok()) << r.status().ToString();
    out.simulated_ms = r->measured_ms;
  }
  out.wall_ms_per_query = (NowMs() - t0) / runs;
  return out;
}

int Run() {
  constexpr int kRuns = 2000;
  std::printf("# execution-profiler overhead: 2-source union, %d runs\n",
              kRuns);
  std::printf("%-14s %16s %14s\n", "profiling", "wall_ms/query",
              "simulated_ms");

  const PassResult off = RunPass(false, kRuns);
  std::printf("%-14s %16.4f %14.3f\n", "off", off.wall_ms_per_query,
              off.simulated_ms);
  const PassResult on = RunPass(true, kRuns);
  std::printf("%-14s %16.4f %14.3f\n", "on", on.wall_ms_per_query,
              on.simulated_ms);

  // Profiling must never change simulated time -- it observes charges,
  // it does not make them.
  DISCO_CHECK(off.simulated_ms == on.simulated_ms)
      << "profiling changed simulated time: " << off.simulated_ms << " vs "
      << on.simulated_ms;

  const double overhead =
      off.wall_ms_per_query > 0
          ? on.wall_ms_per_query / off.wall_ms_per_query
          : 0;
  std::printf("# overhead: %.2fx wall per query\n", overhead);

  std::FILE* f = std::fopen("BENCH_profiler.json", "w");
  DISCO_CHECK(f != nullptr) << "cannot write BENCH_profiler.json";
  std::fprintf(f,
               "{\"profiler\":{\"off_ms_per_query\":%.4f,"
               "\"on_ms_per_query\":%.4f,\"overhead\":%.3f,"
               "\"simulated_ms\":%.3f}}\n",
               off.wall_ms_per_query, on.wall_ms_per_query, overhead,
               on.simulated_ms);
  std::fclose(f);
  std::printf("# wrote BENCH_profiler.json\n");
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
