// Deadline-aware scatter-gather federation (docs/ROBUSTNESS.md): what
// does concurrency buy on the simulated clock, and what do hedging and
// deadlines cost/save? Four benches over seeded federations:
//
//   scatter    4-source union, serial vs scatter -- answers must match
//              byte-for-byte while the charged latency drops max-not-sum
//   hedge      slow primary with a DeclareEquivalent replica, hedging
//              off vs on
//   deadline   a straggler under a per-query deadline: partial answer
//              plus warning instead of waiting
//   objective  kTotalTime vs kResponseTime price of the same plan
//
// Everything runs on the simulated clock with seeded RNGs, so every
// number (and BENCH_federation.json) is byte-stable across reruns.

#include <cstdio>
#include <memory>
#include <string>

#include "mediator/mediator.h"
#include "optimizer/join_enum.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

constexpr int kRows = 200;
constexpr int kRuns = 20;

std::unique_ptr<wrapper::FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection,
    wrapper::FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < kRows; ++i) {
    Status s = t->Insert({Value(int64_t{i})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<wrapper::FaultInjectingWrapper>(std::move(inner),
                                                          profile);
}

/// Four sources behind 100 ms of injected latency; `a` is flaky enough
/// to exercise retries inside the scatter phase.
std::unique_ptr<mediator::Mediator> MakeFourSourceFederation(
    const mediator::FederationOptions& fed) {
  mediator::MediatorOptions options;
  options.fault_tolerance.allow_partial = true;
  options.fault_tolerance.retry = mediator::RetryPolicy::Standard(3);
  options.fault_tolerance.federation = fed;
  options.record_history = false;
  auto med = std::make_unique<mediator::Mediator>(options);
  const char* names[] = {"a", "b", "c", "d"};
  const char* colls[] = {"A", "B", "C", "D"};
  for (int i = 0; i < 4; ++i) {
    wrapper::FaultProfile p;
    if (i == 0) p = wrapper::FaultProfile::Flaky(0.2, /*seed=*/18);
    p.added_latency_ms = 100;
    Status s = med->RegisterWrapper(MakeSource(names[i], colls[i], p));
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  return med;
}

std::unique_ptr<algebra::Operator> FourWayUnion() {
  using algebra::Scan;
  using algebra::Submit;
  return algebra::Union(
      algebra::Union(Submit("a", Scan("A")), Submit("b", Scan("B"))),
      algebra::Union(Submit("c", Scan("C")), Submit("d", Scan("D"))));
}

struct ScatterNumbers {
  double serial_ms = 0;   ///< mean simulated ms/query, serial submits
  double scatter_ms = 0;  ///< mean simulated ms/query, 4-way scatter
  double speedup = 0;
};

ScatterNumbers RunScatter() {
  ScatterNumbers out;
  std::string baseline_tuples;
  for (int scatter : {0, 1}) {
    mediator::FederationOptions fed;
    if (scatter) fed.threads = 4;
    auto med = MakeFourSourceFederation(fed);
    auto plan = FourWayUnion();
    double total = 0;
    std::string tuples;
    for (int run = 0; run < kRuns; ++run) {
      auto r = med->Execute(*plan);
      DISCO_CHECK(r.ok()) << r.status().ToString();
      total += r->measured_ms;
      if (run == 0) {
        for (const storage::Tuple& t : r->tuples) {
          for (const Value& v : t) tuples += v.ToString() + ",";
        }
      }
    }
    if (scatter) {
      DISCO_CHECK(tuples == baseline_tuples)
          << "scatter changed the answer";
      out.scatter_ms = total / kRuns;
    } else {
      baseline_tuples = tuples;
      out.serial_ms = total / kRuns;
    }
  }
  out.speedup = out.scatter_ms > 0 ? out.serial_ms / out.scatter_ms : 0;
  std::printf("%-10s %14.1f %14.1f %9.2fx\n", "scatter", out.serial_ms,
              out.scatter_ms, out.speedup);
  DISCO_CHECK(out.speedup >= 2.0)
      << "4-source scatter below the 2x bar: " << out.speedup;
  return out;
}

struct HedgeNumbers {
  double unhedged_ms = 0;  ///< slow primary awaited
  double hedged_ms = 0;    ///< replica raced and won
  double speedup = 0;
  long long hedges_won = 0;
};

HedgeNumbers RunHedge() {
  HedgeNumbers out;
  for (int hedge : {0, 1}) {
    mediator::MediatorOptions options;
    options.fault_tolerance.federation.hedge = hedge != 0;
    // Activate the scatter path in both arms so only hedging differs.
    options.fault_tolerance.federation.deadline_ms = 1e9;
    options.record_history = false;
    mediator::Mediator med(options);
    auto east = MakeSource("east", "E", wrapper::FaultProfile{});
    wrapper::FaultInjectingWrapper* east_p = east.get();
    DISCO_CHECK(med.RegisterWrapper(std::move(east)).ok());
    DISCO_CHECK(
        med.RegisterWrapper(MakeSource("west", "W", wrapper::FaultProfile{}))
            .ok());
    DISCO_CHECK(med.DeclareEquivalent("E", "W").ok());
    auto plan = algebra::Submit("east", algebra::Scan("E"));
    // Warm the latency profile on a healthy east...
    for (int i = 0; i < 8; ++i) {
      DISCO_CHECK(med.Execute(*plan).ok());
    }
    // ...then the primary develops a deterministic 2-6 s tail.
    east_p->SetProfile(wrapper::FaultProfile::Slow(4000));
    double total = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto r = med.Execute(*plan);
      DISCO_CHECK(r.ok()) << r.status().ToString();
      DISCO_CHECK(r->tuples.size() == kRows);
      total += r->measured_ms;
    }
    if (hedge) {
      out.hedged_ms = total / kRuns;
      out.hedges_won = static_cast<long long>(
          med.metrics()->counter("disco.mediator.hedges.won")->value());
    } else {
      out.unhedged_ms = total / kRuns;
    }
  }
  out.speedup = out.hedged_ms > 0 ? out.unhedged_ms / out.hedged_ms : 0;
  std::printf("%-10s %14.1f %14.1f %9.2fx   (%lld hedges won)\n", "hedge",
              out.unhedged_ms, out.hedged_ms, out.speedup, out.hedges_won);
  DISCO_CHECK(out.hedged_ms < out.unhedged_ms)
      << "hedged run did not beat the slow replica";
  return out;
}

struct DeadlineNumbers {
  double deadline_ms = 1000;
  double no_deadline_ms = 0;  ///< mean ms/query waiting for the straggler
  double with_deadline_ms = 0;
  size_t rows_full = 0;
  size_t rows_partial = 0;
  long long expired_submits = 0;
};

DeadlineNumbers RunDeadline() {
  DeadlineNumbers out;
  for (int limited : {0, 1}) {
    mediator::MediatorOptions options;
    options.fault_tolerance.allow_partial = true;
    options.fault_tolerance.federation.threads = 2;
    options.fault_tolerance.federation.deadline_ms =
        limited ? out.deadline_ms : 1e9;
    options.record_history = false;
    mediator::Mediator med(options);
    DISCO_CHECK(
        med.RegisterWrapper(MakeSource("fast", "F", wrapper::FaultProfile{}))
            .ok());
    DISCO_CHECK(med.RegisterWrapper(
                       MakeSource("slow", "S",
                                  wrapper::FaultProfile::Slow(5000)))
                    .ok());
    auto plan = algebra::Union(algebra::Submit("fast", algebra::Scan("F")),
                               algebra::Submit("slow", algebra::Scan("S")));
    double total = 0;
    size_t rows = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto r = med.Execute(*plan);
      DISCO_CHECK(r.ok()) << r.status().ToString();
      total += r->measured_ms;
      rows = r->tuples.size();
      if (limited) {
        DISCO_CHECK(!r->warnings.empty()) << "expiry must leave a warning";
      }
    }
    if (limited) {
      out.with_deadline_ms = total / kRuns;
      out.rows_partial = rows;
      out.expired_submits = static_cast<long long>(
          med.metrics()
              ->counter("disco.mediator.deadline.expired_submits")
              ->value());
    } else {
      out.no_deadline_ms = total / kRuns;
      out.rows_full = rows;
    }
  }
  std::printf("%-10s %14.1f %14.1f %9s   (%zu -> %zu rows, %lld expiries)\n",
              "deadline", out.no_deadline_ms, out.with_deadline_ms, "",
              out.rows_full, out.rows_partial, out.expired_submits);
  DISCO_CHECK(out.with_deadline_ms < out.no_deadline_ms);
  DISCO_CHECK(out.rows_partial == kRows && out.rows_full == 2 * kRows);
  return out;
}

struct ObjectiveNumbers {
  double total_time_ms = 0;     ///< serial-sum price of the 4-way union
  double response_time_ms = 0;  ///< max-not-sum price of the same plan
  double ratio = 0;
};

ObjectiveNumbers RunObjective() {
  ObjectiveNumbers out;
  auto med = MakeFourSourceFederation(mediator::FederationOptions{});
  auto plan = FourWayUnion();
  costmodel::EstimateOptions opts;
  auto est = med->estimator().Estimate(*plan, opts);
  DISCO_CHECK(est.ok()) << est.status().ToString();
  out.total_time_ms = est->root.total_time();
  auto response = optimizer::ResponseTimeCost(*plan, med->estimator(), opts);
  DISCO_CHECK(response.ok()) << response.status().ToString();
  out.response_time_ms = *response;
  out.ratio = out.response_time_ms > 0
                  ? out.total_time_ms / out.response_time_ms
                  : 0;
  std::printf("%-10s %14.1f %14.1f %9.2fx\n", "objective", out.total_time_ms,
              out.response_time_ms, out.ratio);
  DISCO_CHECK(out.response_time_ms < out.total_time_ms);
  return out;
}

void WriteJson(const ScatterNumbers& scatter, const HedgeNumbers& hedge,
               const DeadlineNumbers& deadline,
               const ObjectiveNumbers& objective) {
  std::FILE* f = std::fopen("BENCH_federation.json", "w");
  DISCO_CHECK(f != nullptr) << "cannot write BENCH_federation.json";
  std::fprintf(f,
               "{\"scatter\":{\"serial_ms\":%.3f,\"scatter_ms\":%.3f,"
               "\"speedup\":%.3f},",
               scatter.serial_ms, scatter.scatter_ms, scatter.speedup);
  std::fprintf(f,
               "\"hedge\":{\"unhedged_ms\":%.3f,\"hedged_ms\":%.3f,"
               "\"speedup\":%.3f,\"hedges_won\":%lld},",
               hedge.unhedged_ms, hedge.hedged_ms, hedge.speedup,
               hedge.hedges_won);
  std::fprintf(f,
               "\"deadline\":{\"deadline_ms\":%.1f,\"no_deadline_ms\":%.3f,"
               "\"with_deadline_ms\":%.3f,\"rows_full\":%zu,"
               "\"rows_partial\":%zu,\"expired_submits\":%lld},",
               deadline.deadline_ms, deadline.no_deadline_ms,
               deadline.with_deadline_ms, deadline.rows_full,
               deadline.rows_partial, deadline.expired_submits);
  std::fprintf(f,
               "\"objective\":{\"total_time_ms\":%.3f,"
               "\"response_time_ms\":%.3f,\"ratio\":%.3f}}\n",
               objective.total_time_ms, objective.response_time_ms,
               objective.ratio);
  std::fclose(f);
}

int Run() {
  std::printf("# scatter-gather federation: %d rows/source, %d runs/arm "
              "(simulated ms)\n", kRows, kRuns);
  std::printf("%-10s %14s %14s %9s\n", "section", "baseline_ms",
              "federated_ms", "delta");
  ScatterNumbers scatter = RunScatter();
  HedgeNumbers hedge = RunHedge();
  DeadlineNumbers deadline = RunDeadline();
  ObjectiveNumbers objective = RunObjective();
  WriteJson(scatter, hedge, deadline, objective);
  std::printf("# wrote BENCH_federation.json\n");

  // Machine-readable block for CI trending; fully seeded and simulated,
  // so byte-stable across reruns.
  std::printf("\n# BENCH_SUMMARY_BEGIN\n"
              "{\n"
              "  \"bench\": \"federation\",\n"
              "  \"scatter_speedup\": %.3f,\n"
              "  \"hedge_speedup\": %.3f,\n"
              "  \"deadline_saved_ms\": %.3f,\n"
              "  \"objective_ratio\": %.3f\n"
              "}\n"
              "# BENCH_SUMMARY_END\n",
              scatter.speedup, hedge.speedup,
              deadline.no_deadline_ms - deadline.with_deadline_ms,
              objective.ratio);
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
