// Observability overhead and closed-loop drift benchmark.
//
// Two halves, both deterministic (simulated clock, no RNG):
//
//   1. Micro: ns/op of the streaming primitives the monitor is built
//      from -- P2Quantile::Add, SlidingWindowQuantile::Add, and a full
//      DriftMonitor::Observe (the per-submit cost every query pays).
//   2. Closed loop: the ISSUE acceptance scenario. A healthy workload
//      freezes a baseline, the source's latency shifts 50s, and we
//      count queries-to-detect (first DriftEvent) and queries-to-
//      recover (latch released by history recalibration).
//
// Results go to stdout AND to BENCH_observability.json in the current
// directory, so CI has a perf trajectory to track. Wall-clock timings
// use std::chrono (bench-only; library code never reads a real clock).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common/sketch.h"
#include "costmodel/drift.h"
#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

double NsPerOp(int64_t iters, std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start);
  return iters > 0 ? static_cast<double>(ns.count()) / iters : 0.0;
}

/// Deterministic value stream with spread (no RNG: a Weyl sequence).
double Sample(int64_t i) {
  const double frac = i * 0.6180339887498949;  // golden-ratio rotation
  return 1.0 + 99.0 * (frac - static_cast<int64_t>(frac));
}

double BenchP2Add(int64_t iters) {
  P2Quantile sketch(0.9);
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) sketch.Add(Sample(i));
  const auto end = std::chrono::steady_clock::now();
  // Keep the result observable so the loop cannot be elided.
  std::printf("#   p2 P90 after %lld adds: %.3f\n",
              static_cast<long long>(iters), sketch.Value());
  return NsPerOp(iters, start, end);
}

double BenchWindowAdd(int64_t iters) {
  SlidingWindowQuantile window(0.9, /*window_ms=*/60000, /*num_buckets=*/6);
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    window.Add(/*now_ms=*/static_cast<double>(i), Sample(i));
  }
  const auto end = std::chrono::steady_clock::now();
  std::printf("#   windowed P90 after %lld adds: %.3f\n",
              static_cast<long long>(iters),
              window.Value(static_cast<double>(iters)));
  return NsPerOp(iters, start, end);
}

double BenchObserve(int64_t iters) {
  costmodel::DriftMonitor monitor;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    monitor.Observe("src", algebra::OpKind::kScan, costmodel::Scope::kQuery,
                    /*estimated_ms=*/100.0,
                    /*measured_ms=*/100.0 + Sample(i),
                    /*now_ms=*/static_cast<double>(i));
  }
  const auto end = std::chrono::steady_clock::now();
  std::printf("#   drift events after %lld observes: %zu\n",
              static_cast<long long>(iters), monitor.events().size());
  return NsPerOp(iters, start, end);
}

struct LoopResult {
  int healthy_queries = 0;
  int queries_to_detect = -1;   ///< post-shift queries before the event
  int queries_to_recover = -1;  ///< post-shift queries until un-latched
  int drift_events = 0;
  double window_q_at_breach = 0;
};

std::unique_ptr<wrapper::FaultInjectingWrapper> MakeSource(int rows) {
  auto src = sources::MakeRelationalSource("src");
  storage::Table* t =
      src->CreateTable(CollectionSchema("T", {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    Status s = t->Insert({Value(int64_t{i})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<wrapper::FaultInjectingWrapper>(
      std::move(inner), wrapper::FaultProfile{});
}

LoopResult RunClosedLoop() {
  LoopResult out;
  mediator::MediatorOptions opts;
  opts.drift.quantile = 0.9;
  opts.drift.window_ms = 120000;
  opts.drift.window_buckets = 6;
  opts.drift.baseline_observations = 6;
  opts.drift.min_window_observations = 3;
  opts.drift.degrade_ratio = 2.0;
  mediator::Mediator med(opts);
  auto src = MakeSource(/*rows=*/400);
  wrapper::FaultInjectingWrapper* faults = src.get();
  DISCO_CHECK(med.RegisterWrapper(std::move(src)).ok());

  out.healthy_queries = 10;
  for (int i = 0; i < out.healthy_queries; ++i) {
    DISCO_CHECK(med.Query("SELECT k FROM T").ok());
  }

  faults->SetProfile(wrapper::FaultProfile{}.WithLatency(50000));
  for (int i = 1; i <= 12; ++i) {
    DISCO_CHECK(med.Query("SELECT k FROM T").ok());
    if (out.queries_to_detect < 0 && !med.drift()->events().empty()) {
      out.queries_to_detect = i;
      out.window_q_at_breach = med.drift()->events().front().window_q;
    }
    if (out.queries_to_detect >= 0 && out.queries_to_recover < 0) {
      bool breached = false;
      for (const auto& cell : med.drift()->Cells(med.sim_now_ms())) {
        breached = breached || cell.breached;
      }
      if (!breached) out.queries_to_recover = i;
    }
  }
  out.drift_events = static_cast<int>(med.drift()->events().size());
  return out;
}

int Run() {
  constexpr int64_t kIters = 200000;
  std::printf("# observability primitives, %lld iterations each\n",
              static_cast<long long>(kIters));
  const double p2_ns = BenchP2Add(kIters);
  const double window_ns = BenchWindowAdd(kIters);
  const double observe_ns = BenchObserve(kIters);
  std::printf("%-28s %10.1f ns/op\n", "P2Quantile::Add", p2_ns);
  std::printf("%-28s %10.1f ns/op\n", "SlidingWindowQuantile::Add", window_ns);
  std::printf("%-28s %10.1f ns/op\n", "DriftMonitor::Observe", observe_ns);

  std::printf("\n# closed loop: 10 healthy queries, then a 50s latency "
              "shift\n");
  const LoopResult loop = RunClosedLoop();
  std::printf("%-28s %10d\n", "queries_to_detect", loop.queries_to_detect);
  std::printf("%-28s %10d\n", "queries_to_recover", loop.queries_to_recover);
  std::printf("%-28s %10d\n", "drift_events", loop.drift_events);
  std::printf("%-28s %10.2f\n", "window_q_at_breach",
              loop.window_q_at_breach);

  // Machine-readable output for CI trend tracking. The ns/op numbers
  // are hardware-dependent; the loop numbers are exact and must not
  // regress.
  FILE* f = std::fopen("BENCH_observability.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write BENCH_observability.json\n");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"observability\",\n"
               "  \"iterations\": %lld,\n"
               "  \"p2_add_ns\": %.1f,\n"
               "  \"window_add_ns\": %.1f,\n"
               "  \"drift_observe_ns\": %.1f,\n"
               "  \"loop\": {\n"
               "    \"healthy_queries\": %d,\n"
               "    \"queries_to_detect\": %d,\n"
               "    \"queries_to_recover\": %d,\n"
               "    \"drift_events\": %d,\n"
               "    \"window_q_at_breach\": %.2f\n"
               "  }\n"
               "}\n",
               static_cast<long long>(kIters), p2_ns, window_ns, observe_ns,
               loop.healthy_queries, loop.queries_to_detect,
               loop.queries_to_recover, loop.drift_events,
               loop.window_q_at_breach);
  std::fclose(f);
  std::printf("\n# wrote BENCH_observability.json\n");
  return loop.queries_to_detect == 1 && loop.drift_events == 1 ? 0 : 1;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
