// Ext-4: the branch-and-bound extension of Section 4.3.2 -- "stop the
// estimation of a plan in the middle of the process, as soon as the
// currently computed (sub)cost is greater than the cost of the current
// best plan".
//
// Following the paper's setting ("the optimizer generates several
// plans"), we enumerate all left-deep join orders of a star query as
// complete plans and estimate them sequentially, with and without the
// cutoff against the best plan seen so far. Reported: estimation work
// (nodes visited, formulas evaluated), wall time, and the (identical)
// winning cost.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

/// A star schema across two sources: facts at one, dimension tables of
/// very different sizes at another, so join orders spread widely in cost.
std::unique_ptr<mediator::Mediator> BuildFederation(int num_dims) {
  mediator::MediatorOptions moptions;
  moptions.record_history = false;
  auto med = std::make_unique<mediator::Mediator>(moptions);

  auto facts_src = sources::MakeRelationalSource("facts");
  std::vector<AttributeDef> fact_attrs{{"fid", AttrType::kLong}};
  for (int d = 0; d < num_dims; ++d) {
    fact_attrs.push_back({StringPrintf("d%d", d), AttrType::kLong});
  }
  storage::Table* fact =
      facts_src->CreateTable(CollectionSchema("Fact", fact_attrs));
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    storage::Tuple t{Value(int64_t{i})};
    for (int d = 0; d < num_dims; ++d) {
      t.push_back(Value(rng.NextInt64(0, 99 + d * 100)));
    }
    DISCO_CHECK(fact->Insert(t).ok());
  }
  DISCO_CHECK(fact->CreateIndex("fid").ok());
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(facts_src),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto dims_src = sources::MakeRelationalSource("dims");
  for (int d = 0; d < num_dims; ++d) {
    storage::Table* dim = dims_src->CreateTable(CollectionSchema(
        StringPrintf("Dim%d", d),
        {{StringPrintf("k%d", d), AttrType::kLong},
         {StringPrintf("v%d", d), AttrType::kLong}}));
    const int64_t n = 50 + 400 * d * d;  // strongly unequal sizes
    for (int64_t i = 0; i < n; ++i) {
      DISCO_CHECK(dim->Insert({Value(i), Value(i * 7 % 1000)}).ok());
    }
    DISCO_CHECK(dim->CreateIndex(StringPrintf("k%d", d)).ok());
  }
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(dims_src),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

/// Builds the left-deep plan Fact ⋈ Dim_{perm[0]} ⋈ Dim_{perm[1]} ...
/// with every relation submitted individually.
std::unique_ptr<algebra::Operator> LeftDeepPlan(const std::vector<int>& perm) {
  std::unique_ptr<algebra::Operator> plan =
      algebra::Submit("facts", algebra::Scan("Fact"));
  for (int d : perm) {
    plan = algebra::Join(
        std::move(plan),
        algebra::Submit("dims", algebra::Scan(StringPrintf("Dim%d", d))),
        algebra::JoinPredicate{StringPrintf("d%d", d),
                               StringPrintf("k%d", d)});
  }
  return plan;
}

int Run() {
  std::printf("# Ext-4: branch-and-bound over complete candidate plans\n");
  std::printf("%-6s %-8s %10s %10s %12s %12s %14s %10s\n", "n_rel",
              "pruning", "plans", "pruned", "nodes", "formulas",
              "best_cost_s", "wall_ms");

  for (int num_dims : {3, 4, 5, 6}) {
    std::unique_ptr<mediator::Mediator> med = BuildFederation(num_dims);
    costmodel::CostEstimator estimator(med->registry(), &med->catalog());

    double cost_with = 0, cost_without = 0;
    for (bool pruning : {false, true}) {
      std::vector<int> perm(static_cast<size_t>(num_dims));
      std::iota(perm.begin(), perm.end(), 0);

      int plans = 0, pruned = 0;
      int64_t nodes = 0, formulas = 0;
      double best = std::numeric_limits<double>::infinity();
      auto t0 = std::chrono::steady_clock::now();
      do {
        std::unique_ptr<algebra::Operator> plan = LeftDeepPlan(perm);
        costmodel::EstimateOptions options;
        if (pruning && best < std::numeric_limits<double>::infinity()) options.prune_bound = best;
        Result<costmodel::PlanEstimate> est =
            estimator.Estimate(*plan, options);
        DISCO_CHECK(est.ok()) << est.status().ToString();
        ++plans;
        nodes += est->nodes_visited;
        formulas += est->formulas_evaluated;
        if (est->pruned) {
          ++pruned;
          continue;
        }
        best = std::min(best, est->root.total_time());
      } while (std::next_permutation(perm.begin(), perm.end()));
      auto t1 = std::chrono::steady_clock::now();
      double wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      (pruning ? cost_with : cost_without) = best;

      std::printf("%-6d %-8s %10d %10d %12lld %12lld %14.2f %10.2f\n",
                  num_dims + 1, pruning ? "on" : "off", plans, pruned,
                  static_cast<long long>(nodes),
                  static_cast<long long>(formulas), best / 1000.0, wall_ms);
    }
    // Pruning is heuristic under non-monotone min-wins strategies (see
    // DESIGN.md); the winner must stay within a few percent.
    DISCO_CHECK(cost_with >= cost_without - 1e-6 &&
                cost_with <= cost_without * 1.05)
        << "pruning degraded the winning plan beyond tolerance";
  }
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
