// Critical-path bench: three numbers behind docs/OBSERVABILITY.md's
// "Critical-path analysis" section.
//
//  whatif    how accurately the what-if engine predicts an actual
//            re-run: "source 'slow' 2x faster" predicted from a 4 s
//            tail vs. the measured time with the injected profile
//            rescaled to 2 s (the seeded draw scales linearly with the
//            mean, so the re-run IS the hypothetical);
//  blame     the dominant blame share the registry assigns on a
//            4-source scatter (how concentrated the bottleneck is);
//  overhead  host-side wall cost of the analysis itself (the simulated
//            clock is unaffected by construction).
//
// Results land in BENCH_critpath.json (cwd).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "mediator/mediator.h"
#include "wrapper/fault_injection.h"

namespace disco {
namespace {

constexpr int kOverheadRuns = 2000;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<wrapper::FaultInjectingWrapper> MakeSource(
    const std::string& source, const std::string& collection, int rows,
    wrapper::FaultProfile profile) {
  auto src = sources::MakeRelationalSource(source);
  storage::Table* t = src->CreateTable(
      CollectionSchema(collection, {{"k", AttrType::kLong}}));
  for (int i = 0; i < rows; ++i) {
    Status s = t->Insert({Value(int64_t{i})});
    DISCO_CHECK(s.ok()) << s.ToString();
  }
  auto inner = std::make_unique<wrapper::SimulatedWrapper>(
      std::move(src), wrapper::SimulatedWrapper::Options{});
  return std::make_unique<wrapper::FaultInjectingWrapper>(std::move(inner),
                                                          profile);
}

struct WhatIfNumbers {
  double baseline_ms = 0;   ///< measured with the 4000 ms slow source
  double predicted_ms = 0;  ///< what-if "source 'slow' 2x faster"
  double actual_ms = 0;     ///< measured re-run with Slow(2000)
  double error_pct = 0;
};

/// One fast + one Slow(mean_ms) source under a 2-lane scatter; returns
/// the measured time and (optionally) the query's critical path.
double RunFastSlow(double slow_mean_ms,
                   std::shared_ptr<const mediator::CriticalPath>* path) {
  mediator::MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.federation.threads = 2;
  opts.fault_tolerance.federation.deadline_ms = 1e9;
  mediator::Mediator med(opts);
  DISCO_CHECK(
      med.RegisterWrapper(MakeSource("fast", "F", 200,
                                     wrapper::FaultProfile{}))
          .ok());
  DISCO_CHECK(med.RegisterWrapper(
                     MakeSource("slow", "S", 200,
                                wrapper::FaultProfile::Slow(slow_mean_ms)))
                  .ok());
  auto plan = algebra::Union(algebra::Submit("fast", algebra::Scan("F")),
                             algebra::Submit("slow", algebra::Scan("S")));
  auto r = med.Execute(*plan);
  DISCO_CHECK(r.ok()) << r.status().ToString();
  if (path != nullptr) *path = r->critical_path;
  return r->measured_ms;
}

WhatIfNumbers RunWhatIf() {
  WhatIfNumbers out;
  std::shared_ptr<const mediator::CriticalPath> path;
  out.baseline_ms = RunFastSlow(4000, &path);
  DISCO_CHECK(path != nullptr);
  for (const mediator::WhatIfResult& w : path->what_ifs) {
    if (w.scenario.ToString() == "source 'slow' 2x faster") {
      out.predicted_ms = w.predicted_ms;
    }
  }
  DISCO_CHECK(out.predicted_ms > 0) << path->ToText();
  out.actual_ms = RunFastSlow(2000, nullptr);
  out.error_pct =
      100.0 * std::abs(out.predicted_ms - out.actual_ms) / out.actual_ms;
  std::printf("%-10s %14.3f %14.3f %9.2f%%  (baseline %.3f ms)\n", "whatif",
              out.predicted_ms, out.actual_ms, out.error_pct,
              out.baseline_ms);
  // The acceptance bar: within 10% of the true rescaled run.
  DISCO_CHECK(out.error_pct <= 10.0) << out.error_pct;
  return out;
}

struct BlameNumbers {
  std::string subject;
  std::string kind;
  double share = 0;
  long long queries = 0;
};

BlameNumbers RunBlame() {
  mediator::MediatorOptions opts;
  opts.fault_tolerance.allow_partial = true;
  opts.fault_tolerance.retry = mediator::RetryPolicy::Standard(3);
  opts.fault_tolerance.federation.threads = 4;
  opts.fault_tolerance.federation.deadline_ms = 1e9;
  mediator::Mediator med(opts);
  DISCO_CHECK(
      med.RegisterWrapper(
             MakeSource("a", "A", 100,
                        wrapper::FaultProfile::Flaky(0.3, 18).WithLatency(100)))
          .ok());
  for (const char* s : {"b", "c", "d"}) {
    DISCO_CHECK(med.RegisterWrapper(
                       MakeSource(s, std::string(1, std::toupper(s[0])), 100,
                                  wrapper::FaultProfile{}.WithLatency(100)))
                    .ok());
  }
  auto plan = algebra::Union(
      algebra::Union(algebra::Submit("a", algebra::Scan("A")),
                     algebra::Submit("b", algebra::Scan("B"))),
      algebra::Union(algebra::Submit("c", algebra::Scan("C")),
                     algebra::Submit("d", algebra::Scan("D"))));
  for (int i = 0; i < 8; ++i) {
    DISCO_CHECK(med.Execute(*plan).ok());
  }
  auto bottlenecks = med.critical_paths().TopBottlenecks(1);
  DISCO_CHECK(!bottlenecks.empty());
  BlameNumbers out;
  out.subject = bottlenecks[0].subject;
  out.kind = bottlenecks[0].kind;
  out.share = bottlenecks[0].share;
  out.queries = bottlenecks[0].queries;
  std::printf("%-10s %-14s %-14s %8.1f%%  (%lld queries)\n", "blame",
              out.subject.c_str(), out.kind.c_str(), 100.0 * out.share,
              out.queries);
  DISCO_CHECK(out.share > 0.25) << out.share;  // a real bottleneck
  return out;
}

struct OverheadNumbers {
  double off_ms_per_query = 0;
  double on_ms_per_query = 0;
  double overhead = 0;
  double simulated_ms = 0;
};

double RunOverheadPass(bool analyze, double* simulated_ms) {
  mediator::MediatorOptions options;
  options.critical_path_analysis = analyze;
  options.record_history = false;
  options.collect_traces = false;
  mediator::Mediator med(options);
  DISCO_CHECK(med.RegisterWrapper(MakeSource("left", "L", 500,
                                             wrapper::FaultProfile{}))
                  .ok());
  DISCO_CHECK(med.RegisterWrapper(MakeSource("right", "R", 500,
                                             wrapper::FaultProfile{}))
                  .ok());
  auto plan = algebra::Union(algebra::Submit("left", algebra::Scan("L")),
                             algebra::Submit("right", algebra::Scan("R")));
  const double t0 = NowMs();
  for (int i = 0; i < kOverheadRuns; ++i) {
    auto r = med.Execute(*plan);
    DISCO_CHECK(r.ok()) << r.status().ToString();
    *simulated_ms = r->measured_ms;
  }
  return (NowMs() - t0) / kOverheadRuns;
}

OverheadNumbers RunOverhead() {
  OverheadNumbers out;
  double sim_off = 0;
  double sim_on = 0;
  out.off_ms_per_query = RunOverheadPass(false, &sim_off);
  out.on_ms_per_query = RunOverheadPass(true, &sim_on);
  out.overhead = out.off_ms_per_query > 0
                     ? out.on_ms_per_query / out.off_ms_per_query
                     : 0;
  out.simulated_ms = sim_on;
  std::printf("%-10s %14.4f %14.4f %9.2fx  (wall ms/query off vs on)\n",
              "overhead", out.off_ms_per_query, out.on_ms_per_query,
              out.overhead);
  // Analysis observes charges, it never makes them.
  DISCO_CHECK(sim_off == sim_on) << sim_off << " vs " << sim_on;
  return out;
}

int Run() {
  std::printf("# critical-path analysis: prediction accuracy, blame "
              "concentration, host overhead\n");
  std::printf("%-10s %14s %14s %9s\n", "section", "predicted", "actual",
              "delta");
  WhatIfNumbers whatif = RunWhatIf();
  BlameNumbers blame = RunBlame();
  OverheadNumbers overhead = RunOverhead();

  std::FILE* f = std::fopen("BENCH_critpath.json", "w");
  DISCO_CHECK(f != nullptr) << "cannot write BENCH_critpath.json";
  std::fprintf(f,
               "{\"whatif\":{\"baseline_ms\":%.3f,\"predicted_ms\":%.3f,"
               "\"actual_ms\":%.3f,\"error_pct\":%.3f},",
               whatif.baseline_ms, whatif.predicted_ms, whatif.actual_ms,
               whatif.error_pct);
  std::fprintf(f,
               "\"blame\":{\"subject\":\"%s\",\"kind\":\"%s\","
               "\"share\":%.4f,\"queries\":%lld},",
               blame.subject.c_str(), blame.kind.c_str(), blame.share,
               blame.queries);
  std::fprintf(f,
               "\"overhead\":{\"off_ms_per_query\":%.4f,"
               "\"on_ms_per_query\":%.4f,\"overhead\":%.3f,"
               "\"simulated_ms\":%.3f}}\n",
               overhead.off_ms_per_query, overhead.on_ms_per_query,
               overhead.overhead, overhead.simulated_ms);
  std::fclose(f);
  std::printf("# wrote BENCH_critpath.json\n");

  // Machine-readable block for CI trending; the wall-clock overhead is
  // host-dependent, the rest is seeded and simulated (byte-stable).
  std::printf("\n# BENCH_SUMMARY_BEGIN\n"
              "{\n"
              "  \"bench\": \"critpath\",\n"
              "  \"whatif_error_pct\": %.3f,\n"
              "  \"dominant_share\": %.4f,\n"
              "  \"overhead\": %.3f\n"
              "}\n"
              "# BENCH_SUMMARY_END\n",
              whatif.error_pct, blame.share, overhead.overhead);
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
