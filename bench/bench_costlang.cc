// Ext-6: cost of the cost language itself.
//
// Section 2.4 argues for shipping *compiled* cost formulas: compilation
// happens once at registration, so query optimization evaluates cheap
// bytecode instead of re-processing rule text. This bench measures
// (a) registration-time compilation throughput,
// (b) evaluation of a compiled formula through the VM, and
// (c) the naive alternative: re-parse + re-compile the rule text on
//     every evaluation.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "common/str_util.h"
#include "costlang/compiler.h"
#include "costlang/vm.h"

namespace disco {
namespace {

const char* kYaoRule =
    "define IO = 25;\n"
    "define Output = 9;\n"
    "define PageSize = 4096;\n"
    "select(C, id <= V) {\n"
    "  CountPage   = C.TotalSize / PageSize;\n"
    "  CountObject = C.CountObject * (V - C.id.Min) / (C.id.Max - C.id.Min);\n"
    "  TotalTime   = IO * CountPage * (1 - exp(-1 * (CountObject / CountPage)))\n"
    "              + CountObject * Output;\n"
    "}\n";

/// Fixed-statistics EvalContext for formula micro-benchmarks.
class FixedContext : public costlang::EvalContext {
 public:
  Result<double> InputVar(int, costlang::CostVarId var) override {
    switch (var) {
      case costlang::CostVarId::kCountObject: return 70000.0;
      case costlang::CostVarId::kTotalSize: return 4096000.0;
      case costlang::CostVarId::kObjectSize: return 56.0;
      default: return 0.0;
    }
  }
  Result<Value> InputAttrStat(int, const std::string&,
                              costlang::AttrStatId stat) override {
    switch (stat) {
      case costlang::AttrStatId::kMin: return Value(0.0);
      case costlang::AttrStatId::kMax: return Value(69999.0);
      case costlang::AttrStatId::kCountDistinct: return Value(70000.0);
      default: return Value(1.0);
    }
  }
  Result<double> SelfVar(costlang::CostVarId) override { return 0.0; }
  Result<Value> Binding(int) override { return Value(35000.0); }
  Result<std::string> ImpliedAttribute() override {
    return std::string("id");
  }
  Result<double> Selectivity(int, const std::optional<std::string>&,
                             const std::optional<Value>&) override {
    return 0.5;
  }
};

std::string ManyRules(int n) {
  std::string text = "define K = 3;\n";
  for (int i = 0; i < n; ++i) {
    text += StringPrintf(
        "select(C, attr%d = V) { TotalTime = C.TotalTime + %d * K; }\n", i,
        i);
  }
  return text;
}

void BM_CompileRuleSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::string text = ManyRules(n);
  costlang::CompileSchema schema;
  for (auto _ : state) {
    Result<costlang::CompiledRuleSet> rules =
        costlang::CompileRuleText(text, schema);
    DISCO_CHECK(rules.ok()) << rules.status().ToString();
    benchmark::DoNotOptimize(rules->rules.size());
  }
  state.counters["rules"] = n;
}
BENCHMARK(BM_CompileRuleSet)->Arg(1)->Arg(64)->Arg(1024);

void BM_EvaluateCompiled(benchmark::State& state) {
  costlang::CompileSchema schema;
  schema.AddCollection("AtomicPart", {"id"});
  Result<costlang::CompiledRuleSet> rules =
      costlang::CompileRuleText(kYaoRule, schema);
  DISCO_CHECK(rules.ok()) << rules.status().ToString();
  const costlang::CompiledRule& rule = rules->rules[0];
  FixedContext ctx;
  for (auto _ : state) {
    // Locals first (CountPage), then the TotalTime formula.
    std::vector<Value> locals;
    for (const costlang::CompiledLocal& local : rule.locals) {
      Result<double> v = costlang::Execute(local.program, &ctx, locals,
                                           rules->global_values);
      DISCO_CHECK(v.ok()) << v.status().ToString();
      locals.push_back(Value(*v));
    }
    for (const costlang::CompiledFormula& f : rule.formulas) {
      Result<double> v =
          costlang::Execute(f.program, &ctx, locals, rules->global_values);
      DISCO_CHECK(v.ok()) << v.status().ToString();
      benchmark::DoNotOptimize(*v);
    }
  }
}
BENCHMARK(BM_EvaluateCompiled);

void BM_EvaluateReparsingEachTime(benchmark::State& state) {
  costlang::CompileSchema schema;
  schema.AddCollection("AtomicPart", {"id"});
  FixedContext ctx;
  for (auto _ : state) {
    Result<costlang::CompiledRuleSet> rules =
        costlang::CompileRuleText(kYaoRule, schema);
    DISCO_CHECK(rules.ok());
    const costlang::CompiledRule& rule = rules->rules[0];
    std::vector<Value> locals;
    for (const costlang::CompiledLocal& local : rule.locals) {
      Result<double> v = costlang::Execute(local.program, &ctx, locals,
                                           rules->global_values);
      DISCO_CHECK(v.ok());
      locals.push_back(Value(*v));
    }
    for (const costlang::CompiledFormula& f : rule.formulas) {
      Result<double> v =
          costlang::Execute(f.program, &ctx, locals, rules->global_values);
      DISCO_CHECK(v.ok());
      benchmark::DoNotOptimize(*v);
    }
  }
}
BENCHMARK(BM_EvaluateReparsingEachTime);

}  // namespace
}  // namespace disco

BENCHMARK_MAIN();
