// The fast planning path (docs/PERFORMANCE.md), measured end to end:
//
//   1. parameterized plan cache -- warm template hits vs. cold
//      optimization of the same query shape (acceptance: >= 5x);
//   2. subplan cost memoization -- rule-matching and formula work with
//      the memo on vs. off on a 9-relation star (acceptance: >= 30%
//      reduction in both formulas evaluated and match attempts);
//   3. deterministic parallel candidate pricing -- wall time at pool
//      sizes {1, 2, 4, 8} with the invariant that every pool size
//      chooses the identical plan at the identical estimated cost.
//
// Results also land in BENCH_planning.json (cwd) for CI trending.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "mediator/mediator.h"

namespace disco {
namespace {

constexpr int kNumDims = 8;  // 9 relations: planning dominates execution

/// A planning-heavy star: many relations, tiny tables. Wall time is
/// almost entirely join enumeration, which is what this bench measures.
std::unique_ptr<mediator::Mediator> BuildFederation(
    mediator::MediatorOptions moptions) {
  moptions.record_history = false;  // keep per-query work identical
  auto med = std::make_unique<mediator::Mediator>(moptions);

  auto facts_src = sources::MakeRelationalSource("facts");
  std::vector<AttributeDef> fact_attrs{{"fid", AttrType::kLong}};
  for (int d = 0; d < kNumDims; ++d) {
    fact_attrs.push_back({StringPrintf("d%d", d), AttrType::kLong});
  }
  storage::Table* fact =
      facts_src->CreateTable(CollectionSchema("Fact", fact_attrs));
  for (int i = 0; i < 200; ++i) {
    storage::Tuple t{Value(int64_t{i})};
    for (int d = 0; d < kNumDims; ++d) {
      t.push_back(Value(int64_t{i % (5 + d)}));
    }
    DISCO_CHECK(fact->Insert(t).ok());
  }
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(facts_src),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto dims_src = sources::MakeRelationalSource("dims");
  for (int d = 0; d < kNumDims; ++d) {
    storage::Table* dim = dims_src->CreateTable(CollectionSchema(
        StringPrintf("Dim%d", d),
        {{StringPrintf("k%d", d), AttrType::kLong},
         {StringPrintf("v%d", d), AttrType::kLong}}));
    for (int64_t i = 0; i < 10 + 5 * d; ++i) {
      DISCO_CHECK(dim->Insert({Value(i), Value(i * 3)}).ok());
    }
  }
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(dims_src),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

std::string StarQuery() {
  std::string sql = "SELECT fid FROM Fact";
  for (int d = 0; d < kNumDims; ++d) sql += StringPrintf(", Dim%d", d);
  sql += " WHERE ";
  for (int d = 0; d < kNumDims; ++d) {
    if (d > 0) sql += " AND ";
    sql += StringPrintf("Fact.d%d = Dim%d.k%d", d, d, d);
  }
  return sql;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct CacheNumbers {
  double cold_ms = 0;
  double warm_ms = 0;
  double speedup = 0;
};

/// Section 1: identical queries against a cache-disabled and a
/// cache-enabled mediator. The warm path re-prices the cached template
/// instead of enumerating, so per-query wall time collapses.
CacheNumbers RunPlanCache(const std::string& sql) {
  constexpr int kQueries = 10;
  CacheNumbers out;

  mediator::MediatorOptions cold_opts;
  cold_opts.plan_cache_capacity = 0;
  auto cold = BuildFederation(cold_opts);
  DISCO_CHECK(cold->Query(sql).ok());  // ignore first-touch effects
  double t0 = NowMs();
  for (int i = 0; i < kQueries; ++i) {
    auto r = cold->Query(sql);
    DISCO_CHECK(r.ok() && !r->plan_cache_hit);
  }
  out.cold_ms = (NowMs() - t0) / kQueries;

  auto warm = BuildFederation(mediator::MediatorOptions{});
  DISCO_CHECK(warm->Query(sql).ok());  // populates the template
  t0 = NowMs();
  for (int i = 0; i < kQueries; ++i) {
    auto r = warm->Query(sql);
    DISCO_CHECK(r.ok() && r->plan_cache_hit);
  }
  out.warm_ms = (NowMs() - t0) / kQueries;

  out.speedup = out.cold_ms / out.warm_ms;
  std::printf("%-22s %12.3f %12.3f %10.1fx\n", "plan cache (per query)",
              out.cold_ms, out.warm_ms, out.speedup);
  DISCO_CHECK(out.speedup >= 5.0)
      << "warm plan-cache path below the 5x acceptance bar: "
      << out.speedup;
  return out;
}

struct MemoNumbers {
  int64_t formulas_off = 0, formulas_on = 0;
  int64_t matches_off = 0, matches_on = 0;
  double formula_reduction = 0, match_reduction = 0;
};

/// Section 2: one enumeration of the 9-relation star with the memo off
/// and on. Shared subtrees across candidate orders are priced once.
MemoNumbers RunCostMemo(mediator::Mediator* med, const std::string& sql) {
  costmodel::CostEstimator estimator(med->registry(), &med->catalog());
  optimizer::Optimizer optimizer(&estimator, &med->capabilities());
  auto bound = med->Analyze(sql);
  DISCO_CHECK(bound.ok()) << bound.status().ToString();

  optimizer::OptimizerOptions off;
  off.use_memo = false;
  auto plain = optimizer.Optimize(*bound, off);
  DISCO_CHECK(plain.ok()) << plain.status().ToString();

  auto memoized = optimizer.Optimize(*bound, optimizer::OptimizerOptions{});
  DISCO_CHECK(memoized.ok());
  DISCO_CHECK(memoized->plan->ToString() == plain->plan->ToString());
  DISCO_CHECK(memoized->estimated_ms == plain->estimated_ms);

  MemoNumbers out;
  out.formulas_off = plain->stats.formulas_evaluated;
  out.formulas_on = memoized->stats.formulas_evaluated;
  out.matches_off = plain->stats.match_attempts;
  out.matches_on = memoized->stats.match_attempts;
  out.formula_reduction =
      1.0 - static_cast<double>(out.formulas_on) /
                static_cast<double>(out.formulas_off);
  out.match_reduction = 1.0 - static_cast<double>(out.matches_on) /
                                  static_cast<double>(out.matches_off);
  std::printf("%-22s %12lld %12lld %9.0f%%\n", "memo: formulas",
              static_cast<long long>(out.formulas_off),
              static_cast<long long>(out.formulas_on),
              out.formula_reduction * 100);
  std::printf("%-22s %12lld %12lld %9.0f%%\n", "memo: match attempts",
              static_cast<long long>(out.matches_off),
              static_cast<long long>(out.matches_on),
              out.match_reduction * 100);
  DISCO_CHECK(out.formula_reduction >= 0.30 && out.match_reduction >= 0.30)
      << "memo below the 30% work-reduction acceptance bar";
  return out;
}

struct ScalePoint {
  int threads = 0;
  double wall_ms = 0;
};

/// Section 3: the same enumeration priced by pools of growing size.
/// Speed may vary; the chosen plan and its cost may not.
std::vector<ScalePoint> RunThreadScaling(mediator::Mediator* med,
                                         const std::string& sql) {
  constexpr int kRounds = 5;
  costmodel::CostEstimator estimator(med->registry(), &med->catalog());
  optimizer::Optimizer optimizer(&estimator, &med->capabilities());
  auto bound = med->Analyze(sql);
  DISCO_CHECK(bound.ok());

  std::vector<ScalePoint> points;
  std::string baseline_plan;
  double baseline_cost = 0;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    double t0 = NowMs();
    for (int round = 0; round < kRounds; ++round) {
      costmodel::CostMemo memo;  // fresh memo: every round does full work
      optimizer::OptimizerOptions opts;
      opts.memo = &memo;
      opts.pool = &pool;
      auto result = optimizer.Optimize(*bound, opts);
      DISCO_CHECK(result.ok());
      if (baseline_plan.empty()) {
        baseline_plan = result->plan->ToString();
        baseline_cost = result->estimated_ms;
      }
      DISCO_CHECK(result->plan->ToString() == baseline_plan &&
                  result->estimated_ms == baseline_cost)
          << "pool size " << threads << " changed the planning outcome";
    }
    double wall = (NowMs() - t0) / kRounds;
    points.push_back({threads, wall});
    std::printf("%-22s %12d %12.3f\n", "parallel pricing", threads, wall);
  }
  return points;
}

void WriteJson(const CacheNumbers& cache, const MemoNumbers& memo,
               const std::vector<ScalePoint>& scale) {
  std::FILE* f = std::fopen("BENCH_planning.json", "w");
  DISCO_CHECK(f != nullptr) << "cannot write BENCH_planning.json";
  std::fprintf(f,
               "{\"plan_cache\":{\"cold_ms_per_query\":%.4f,"
               "\"warm_ms_per_query\":%.4f,\"speedup\":%.2f},",
               cache.cold_ms, cache.warm_ms, cache.speedup);
  std::fprintf(f,
               "\"cost_memo\":{\"formulas_off\":%lld,\"formulas_on\":%lld,"
               "\"formula_reduction\":%.3f,\"match_attempts_off\":%lld,"
               "\"match_attempts_on\":%lld,\"match_reduction\":%.3f},",
               static_cast<long long>(memo.formulas_off),
               static_cast<long long>(memo.formulas_on),
               memo.formula_reduction,
               static_cast<long long>(memo.matches_off),
               static_cast<long long>(memo.matches_on), memo.match_reduction);
  std::fprintf(f, "\"thread_scaling\":[");
  for (size_t i = 0; i < scale.size(); ++i) {
    std::fprintf(f, "%s{\"threads\":%d,\"wall_ms\":%.3f}", i ? "," : "",
                 scale[i].threads, scale[i].wall_ms);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
}

int Run() {
  const std::string sql = StarQuery();
  std::printf("# Fast planning path: %d-relation star\n", kNumDims + 1);
  std::printf("%-22s %12s %12s %10s\n", "section", "off/cold_ms",
              "on/warm_ms", "delta");
  CacheNumbers cache = RunPlanCache(sql);

  auto med = BuildFederation(mediator::MediatorOptions{});
  MemoNumbers memo = RunCostMemo(med.get(), sql);

  std::printf("%-22s %12s %12s\n", "section", "threads", "wall_ms");
  std::vector<ScalePoint> scale = RunThreadScaling(med.get(), sql);

  WriteJson(cache, memo, scale);
  std::printf("# wrote BENCH_planning.json\n");
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
