// Ext-8: the paper's §7 motivating scenario -- "avoid processing a large
// number of images by first selecting a few images from other data
// source".
//
// A photo archive (object database; producing an image object costs 9 ms,
// and image objects are large) joined with a small metadata catalog at a
// relational source. The query selects a year's photos. Without bind
// joins the optimizer must scan/ship the whole image collection; with
// them it first evaluates the cheap metadata selection and then probes
// only the matching images by id.

#include <cstdio>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "mediator/mediator.h"
#include "optimizer/optimizer.h"

namespace disco {
namespace {

std::unique_ptr<mediator::Mediator> BuildFederation(int num_images) {
  mediator::MediatorOptions options;
  options.record_history = false;
  auto med = std::make_unique<mediator::Mediator>(options);

  auto img = sources::MakeObjectDbSource("photoarchive");
  storage::Table* images = img->CreateTable(CollectionSchema(
      "Image", {{"id", AttrType::kLong},
                {"width", AttrType::kLong},
                {"height", AttrType::kLong},
                {"checksum", AttrType::kString}}));
  Rng rng(41);
  for (int i = 0; i < num_images; ++i) {
    DISCO_CHECK(images
                    ->Insert({Value(int64_t{i}),
                              Value(rng.NextInt64(640, 4000)),
                              Value(rng.NextInt64(480, 3000)),
                              Value(std::string(48, 'x'))})  // blob-ish
                    .ok());
  }
  DISCO_CHECK(images->CreateIndex("id").ok());
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(img),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());

  auto meta = sources::MakeRelationalSource("catalog");
  storage::Table* entries = meta->CreateTable(CollectionSchema(
      "Meta", {{"photoId", AttrType::kLong}, {"year", AttrType::kLong}}));
  for (int i = 0; i < num_images; ++i) {
    DISCO_CHECK(
        entries
            ->Insert({Value(int64_t{i}), Value(int64_t{1980 + i % 40})})
            .ok());
  }
  DISCO_CHECK(med->RegisterWrapper(std::make_unique<wrapper::SimulatedWrapper>(
                                       std::move(meta),
                                       wrapper::SimulatedWrapper::Options{}))
                  .ok());
  return med;
}

int Run() {
  std::printf("# Ext-8: probing a few images vs processing them all (§7)\n");
  std::printf("%-10s %-12s %14s %14s %10s   plan\n", "images", "bindjoin",
              "estimated_s", "measured_s", "probes");

  for (int num_images : {10000, 40000}) {
    std::unique_ptr<mediator::Mediator> med = BuildFederation(num_images);
    const std::string sql =
        "SELECT photoId, width, height FROM Meta, Image "
        "WHERE Meta.photoId = Image.id AND year = 2001";

    auto bound = med->Analyze(sql);
    DISCO_CHECK(bound.ok()) << bound.status().ToString();
    costmodel::CostEstimator estimator(med->registry(), &med->catalog());
    optimizer::Optimizer opt(&estimator, &med->capabilities());

    for (bool bind : {false, true}) {
      optimizer::OptimizerOptions options;
      options.enable_bind_join = bind;
      auto plan = opt.Optimize(*bound, options);
      DISCO_CHECK(plan.ok()) << plan.status().ToString();
      auto result = med->Execute(*plan.ValueOrDie().plan);
      DISCO_CHECK(result.ok()) << result.status().ToString();

      std::string one_line;
      for (char c : result->plan_text) one_line += (c == '\n') ? ' ' : c;
      std::printf("%-10d %-12s %14.1f %14.1f %10zu   %s\n", num_images,
                  bind ? "on" : "off", plan.ValueOrDie().estimated_ms / 1000.0,
                  result->measured_ms / 1000.0, result->tuples.size(),
                  one_line.c_str());
    }
  }
  std::printf(
      "\nWith bind joins the mediator retrieves only the year's images by\n"
      "id instead of producing the whole archive -- the plan the paper\n"
      "argues accurate ADT/operation costs should enable.\n");
  return 0;
}

}  // namespace
}  // namespace disco

int main() { return disco::Run(); }
